"""End-to-end integration tests across subpackages.

These exercise the flows a downstream user actually runs: data generation
→ pipeline → analysis → serialization; engines against each other; the
machine model against measured host behaviour; statistical calibration of
the whole significance machinery.
"""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.analysis import aupr, score_network, summarize
from repro.baselines import dpi_prune, estimate_cluster_run, pearson_matrix
from repro.core import GeneNetwork
from repro.data import (
    load_dataset,
    microarray_dataset,
    save_dataset,
    toy,
    write_expression_tsv,
    read_expression_tsv,
    yeast_subset,
)
from repro.machine import KernelProfile, MachineSimulator, XEON_PHI_5110P
from repro.parallel import ProcessEngine, SerialEngine, ThreadEngine


class TestFullWorkflow:
    def test_generate_reconstruct_analyze_roundtrip(self, tmp_path):
        ds = yeast_subset(n_genes=50, m_samples=200, seed=10)
        save_dataset(ds, tmp_path / "ds.npz")
        ds2 = load_dataset(tmp_path / "ds.npz")

        res = reconstruct_network(ds2.expression, ds2.genes,
                                  TingeConfig(n_permutations=20))
        res.network.save(tmp_path / "net.npz")
        net = GeneNetwork.load(tmp_path / "net.npz")

        c = score_network(net, ds2.truth)
        assert c.recall > 0.5  # real dependencies are found
        s = summarize(net)
        assert s.n_genes == 50

    def test_tsv_pathway_matches_npz_pathway(self, tmp_path):
        ds = toy(n_genes=15, m_samples=80, seed=4)
        write_expression_tsv(ds, tmp_path / "ds.tsv")
        ds_tsv = read_expression_tsv(tmp_path / "ds.tsv")
        cfg = TingeConfig(n_permutations=10, seed=2)
        a = reconstruct_network(ds.expression, ds.genes, cfg)
        b = reconstruct_network(ds_tsv.expression, ds_tsv.genes, cfg)
        # TSV stores 6 significant digits; the rank transform absorbs the
        # rounding, so the networks must be identical.
        assert np.array_equal(a.network.adjacency, b.network.adjacency)

    def test_microarray_noise_pipeline_still_recovers(self):
        ds = microarray_dataset(n_genes=40, m_samples=300, dropout=0.02, seed=5)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=20, alpha=0.05))
        assert aupr(res.mi, ds.truth) > 3 * (
            ds.truth.n_edges / (40 * 39 / 2)
        )

    def test_dpi_improves_precision_on_hub_data(self):
        ds = yeast_subset(n_genes=60, m_samples=300, seed=42)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=25))
        raw = score_network(res.network, ds.truth)
        pruned_net = GeneNetwork(
            dpi_prune(res.mi, res.network.adjacency, tolerance=0.1),
            res.mi, res.network.genes,
        )
        pruned = score_network(pruned_net, ds.truth)
        assert pruned.precision > raw.precision


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        return yeast_subset(n_genes=40, m_samples=150, seed=8)

    def test_all_engines_same_network(self, dataset):
        cfg = TingeConfig(n_permutations=10, seed=1)
        nets = []
        for engine in (None, SerialEngine(), ThreadEngine(n_workers=3),
                       ProcessEngine(n_workers=2)):
            res = reconstruct_network(dataset.expression, dataset.genes, cfg,
                                      engine=engine)
            nets.append(res.network)
        ref = nets[0]
        for net in nets[1:]:
            assert np.array_equal(net.adjacency, ref.adjacency)
            assert np.allclose(net.weights, ref.weights)


class TestModelVsMeasurement:
    def test_simulator_matches_measured_quadratic_shape(self):
        """The machine model and the real host must agree on *shape*:
        doubling genes ~quadruples time on both."""
        import time

        from repro.core.bspline import weight_tensor
        from repro.core.discretize import rank_transform
        from repro.core.mi_matrix import mi_matrix

        rng = np.random.default_rng(3)
        data = rank_transform(rng.normal(size=(256, 200)))
        w = weight_tensor(data, dtype=np.float32)

        def measure(n):
            t0 = time.perf_counter()
            mi_matrix(w[:n], tile=32)
            return time.perf_counter() - t0

        measure(64)  # warm
        host_ratio = measure(256) / measure(128)

        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=200))
        model_ratio = sim.predict_seconds(256, 240) / sim.predict_seconds(128, 240)
        assert host_ratio == pytest.approx(model_ratio, rel=0.5)

    def test_cluster_vs_chip_tradeoff(self):
        """The paper's core claim shape: one Phi ~ a 1024-core cluster
        within a small factor."""
        from repro.machine import BLUEGENE_L_1024

        profile = KernelProfile(m_samples=3137, n_permutations_fused=30)
        phi = MachineSimulator(XEON_PHI_5110P, profile).predict_seconds(15575, 240)
        cluster = estimate_cluster_run(BLUEGENE_L_1024, 15575, profile).total
        assert 1.0 < phi / cluster < 4.0


class TestStatisticalCalibration:
    def test_false_positive_rate_controlled(self):
        """On pure-noise data the Bonferroni-corrected pipeline emits ~no
        edges across repeated runs."""
        total_edges = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            data = rng.normal(size=(12, 150))
            res = reconstruct_network(
                data, config=TingeConfig(n_permutations=40, alpha=0.05,
                                         seed=seed),
            )
            total_edges += res.network.n_edges
        assert total_edges <= 3  # 5 runs x 66 pairs, FWER 0.05 each

    def test_power_grows_with_samples(self):
        """More samples -> more true edges recovered at fixed alpha."""
        recalls = []
        for m in (60, 400):
            ds = yeast_subset(n_genes=30, m_samples=m, seed=6)
            res = reconstruct_network(ds.expression, ds.genes,
                                      TingeConfig(n_permutations=25, seed=0))
            recalls.append(score_network(res.network, ds.truth).recall)
        assert recalls[1] > recalls[0]

    def test_mi_beats_pearson_on_nonlinear(self):
        ds = yeast_subset(n_genes=80, m_samples=400, seed=3)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=20))
        assert aupr(res.mi, ds.truth) > aupr(
            np.abs(pearson_matrix(ds.expression)), ds.truth
        )
