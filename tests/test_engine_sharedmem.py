"""Tests for repro.parallel.engine, sharedmem and reductions."""

import numpy as np
import pytest

from repro.parallel.engine import ProcessEngine, SerialEngine, ThreadEngine, make_engine
from repro.parallel.reductions import linear_reduce, merge_histograms, tree_depth, tree_reduce
from repro.parallel.scheduler import StaticScheduler
from repro.parallel.sharedmem import SharedArray


def square(x):
    return x * x


class TestSerialEngine:
    def test_map_order(self):
        assert SerialEngine().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialEngine().map(square, []) == []


class TestThreadEngine:
    def test_map_order_preserved(self):
        eng = ThreadEngine(n_workers=4)
        assert eng.map(square, list(range(50))) == [i * i for i in range(50)]

    def test_static_policy(self):
        eng = ThreadEngine(n_workers=3, policy=StaticScheduler())
        assert eng.map(square, list(range(20))) == [i * i for i in range(20)]

    def test_closures_allowed(self):
        offset = 10
        eng = ThreadEngine(n_workers=2)
        assert eng.map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_single_worker(self):
        assert ThreadEngine(n_workers=1).map(square, [3]) == [9]

    def test_empty(self):
        assert ThreadEngine(n_workers=2).map(square, []) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadEngine(n_workers=0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("kernel failed")

        with pytest.raises(RuntimeError, match="kernel failed"):
            ThreadEngine(n_workers=2).map(boom, [1])


class TestProcessEngine:
    def test_map_with_closure_over_array(self):
        big = np.arange(100)

        def task(i):
            return int(big[i]) + 1

        eng = ProcessEngine(n_workers=2)
        assert eng.map(task, [0, 5, 99]) == [1, 6, 100]

    def test_order_preserved(self):
        eng = ProcessEngine(n_workers=2)
        assert eng.map(square, list(range(10))) == [i * i for i in range(10)]

    def test_single_worker_inline(self):
        assert ProcessEngine(n_workers=1).map(square, [4]) == [16]

    def test_empty(self):
        assert ProcessEngine(n_workers=2).map(square, []) == []


class TestMakeEngine:
    def test_kinds(self):
        assert isinstance(make_engine("serial"), SerialEngine)
        assert isinstance(make_engine("thread", n_workers=2), ThreadEngine)
        assert isinstance(make_engine("process", n_workers=1), ProcessEngine)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_engine("gpu")


class TestSharedArray:
    def test_create_write_read(self):
        sa = SharedArray.create((3, 3), "float64")
        try:
            sa.array[:] = 7.0
            assert sa.array.sum() == 63.0
        finally:
            sa.close()
            sa.unlink()

    def test_attach_sees_writes(self):
        sa = SharedArray.create((4,), "int64")
        try:
            sa.array[:] = 0
            dup = SharedArray.attach(*sa.handle())
            dup.array[2] = 42
            assert sa.array[2] == 42
            dup.close()
        finally:
            sa.close()
            sa.unlink()

    def test_from_array_copies(self, rng):
        src = rng.normal(size=(5, 2))
        sa = SharedArray.from_array(src)
        try:
            assert np.array_equal(sa.array, src)
        finally:
            sa.close()
            sa.unlink()

    def test_attacher_cannot_unlink(self):
        sa = SharedArray.create((2,), "float64")
        dup = SharedArray.attach(*sa.handle())
        try:
            with pytest.raises(RuntimeError):
                dup.unlink()
        finally:
            dup.close()
            sa.close()
            sa.unlink()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SharedArray.create((0,), "float64")

    def test_cross_process_writes(self):
        # Workers write disjoint slots of a shared output vector.
        sa = SharedArray.create((8,), "float64")
        try:
            sa.array[:] = -1.0
            handle = sa.handle()

            def worker(i):
                dup = SharedArray.attach(*handle)
                dup.array[i] = i * 10.0
                dup.close()
                return i

            eng = ProcessEngine(n_workers=2)
            eng.map(worker, list(range(8)))
            assert np.array_equal(sa.array, np.arange(8) * 10.0)
        finally:
            sa.close()
            sa.unlink()


class TestReductions:
    def test_linear_and_tree_agree(self, rng):
        parts = [rng.normal(size=4) for _ in range(9)]
        a = linear_reduce(parts, np.add)
        b = tree_reduce(parts, np.add)
        assert np.allclose(a, b)

    def test_single_part(self):
        assert tree_reduce([5], lambda a, b: a + b) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([], np.add)
        with pytest.raises(ValueError):
            linear_reduce([], np.add)

    def test_tree_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    def test_tree_depth_invalid(self):
        with pytest.raises(ValueError):
            tree_depth(0)

    def test_merge_histograms(self, rng):
        parts = [rng.integers(0, 5, size=(3, 3)).astype(float) for _ in range(4)]
        merged = merge_histograms(parts)
        assert np.allclose(merged, sum(parts))

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_histograms([np.zeros(3), np.zeros(4)])
