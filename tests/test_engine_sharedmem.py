"""Tests for repro.parallel.engine, sharedmem and reductions."""

import threading

import numpy as np
import pytest

from repro.parallel.engine import (
    _FORK_TASKS,
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    ThreadEngine,
    make_engine,
)
from repro.parallel.reductions import linear_reduce, merge_histograms, tree_depth, tree_reduce
from repro.parallel.scheduler import StaticScheduler
from repro.parallel.sharedmem import SharedArray


def square(x):
    return x * x


def write_slot(out, i):
    out[i] = i * 10.0


class TestSerialEngine:
    def test_map_order(self):
        assert SerialEngine().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialEngine().map(square, []) == []


class TestThreadEngine:
    def test_map_order_preserved(self):
        eng = ThreadEngine(n_workers=4)
        assert eng.map(square, list(range(50))) == [i * i for i in range(50)]

    def test_static_policy(self):
        eng = ThreadEngine(n_workers=3, policy=StaticScheduler())
        assert eng.map(square, list(range(20))) == [i * i for i in range(20)]

    def test_closures_allowed(self):
        offset = 10
        eng = ThreadEngine(n_workers=2)
        assert eng.map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_single_worker(self):
        assert ThreadEngine(n_workers=1).map(square, [3]) == [9]

    def test_empty(self):
        assert ThreadEngine(n_workers=2).map(square, []) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadEngine(n_workers=0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("kernel failed")

        with pytest.raises(RuntimeError, match="kernel failed"):
            ThreadEngine(n_workers=2).map(boom, [1])


class TestProcessEngine:
    def test_concurrent_maps_do_not_clobber(self):
        # Regression: task publication used one module-global slot, so two
        # threads mapping at once overwrote each other's (fn, items).
        eng = ProcessEngine(n_workers=2)
        results = {}

        def run(key, fn, items):
            results[key] = eng.map(fn, items)

        threads = [
            threading.Thread(target=run, args=("double", lambda x: x * 2, list(range(100)))),
            threading.Thread(target=run, args=("offset", lambda x: x + 1000, list(range(100)))),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["double"] == [x * 2 for x in range(100)]
        assert results["offset"] == [x + 1000 for x in range(100)]

    def test_nested_map_runs_inline(self):
        # A map issued from inside a (daemonic) worker cannot fork again;
        # it must degrade to in-process execution, not crash or hang.
        def outer(x):
            inner = ProcessEngine(n_workers=2)
            return sum(inner.map(lambda y: y * x, [1, 2, 3]))

        eng = ProcessEngine(n_workers=2)
        assert eng.map(outer, [1, 2, 3]) == [6, 12, 18]

    def test_registry_left_clean(self):
        before = dict(_FORK_TASKS)
        ProcessEngine(n_workers=2).map(square, list(range(8)))
        assert _FORK_TASKS == before

    def test_map_with_closure_over_array(self):
        big = np.arange(100)

        def task(i):
            return int(big[i]) + 1

        eng = ProcessEngine(n_workers=2)
        assert eng.map(task, [0, 5, 99]) == [1, 6, 100]

    def test_order_preserved(self):
        eng = ProcessEngine(n_workers=2)
        assert eng.map(square, list(range(10))) == [i * i for i in range(10)]

    def test_single_worker_inline(self):
        assert ProcessEngine(n_workers=1).map(square, [4]) == [16]

    def test_empty(self):
        assert ProcessEngine(n_workers=2).map(square, []) == []


class TestSharedMemoryEngine:
    def test_map_into_writes_in_place(self):
        out = np.full(8, -1.0)
        SharedMemoryEngine(n_workers=2).map_into(write_slot, list(range(8)), out)
        assert np.array_equal(out, np.arange(8) * 10.0)

    def test_map_into_sharedarray_sink(self):
        # Passing a SharedArray skips the staging copy entirely.
        sa = SharedArray.create((6,), "float64")
        try:
            sa.array[:] = 0.0
            SharedMemoryEngine(n_workers=2).map_into(write_slot, list(range(6)), sa)
            assert np.array_equal(sa.array, np.arange(6) * 10.0)
        finally:
            sa.close()
            sa.unlink()

    def test_map_into_closure_over_array(self):
        # Closures reach workers by fork/COW, never by pickling.
        big = np.arange(100, dtype=np.float64)

        def task(out, i):
            out[i] = big[i] + 0.5

        out = np.zeros(10)
        SharedMemoryEngine(n_workers=3).map_into(task, list(range(10)), out)
        assert np.array_equal(out, np.arange(10) + 0.5)

    def test_map_into_2d_blocks(self):
        out = np.zeros((4, 4))

        def block(o, r):
            o[r, :] = r + 1.0

        SharedMemoryEngine(n_workers=2).map_into(block, list(range(4)), out)
        assert np.array_equal(out, np.repeat(np.arange(1.0, 5.0)[:, None], 4, axis=1))

    def test_map_into_empty(self):
        out = np.full(3, 7.0)
        SharedMemoryEngine(n_workers=2).map_into(write_slot, [], out)
        assert np.array_equal(out, np.full(3, 7.0))

    def test_map_into_single_worker_inline(self):
        out = np.zeros(4)
        SharedMemoryEngine(n_workers=1).map_into(write_slot, list(range(4)), out)
        assert np.array_equal(out, np.arange(4) * 10.0)

    def test_map_into_bad_sink_rejected(self):
        with pytest.raises(TypeError):
            SharedMemoryEngine(n_workers=2).map_into(write_slot, [0], [0.0, 0.0])

    def test_worker_error_propagates(self):
        def boom(out, i):
            raise ValueError("tile kernel failed")

        with pytest.raises(RuntimeError, match="tile kernel failed"):
            SharedMemoryEngine(n_workers=2).map_into(boom, [0, 1, 2], np.zeros(3))

    def test_registry_left_clean_after_error(self):
        before = dict(_FORK_TASKS)

        def boom(out, i):
            raise ValueError("nope")

        with pytest.raises(RuntimeError):
            SharedMemoryEngine(n_workers=2).map_into(boom, [0, 1], np.zeros(2))
        assert _FORK_TASKS == before

    def test_plain_map_inherited(self):
        eng = SharedMemoryEngine(n_workers=2)
        assert eng.map(square, list(range(10))) == [i * i for i in range(10)]

    def test_reusable_across_calls(self):
        eng = SharedMemoryEngine(n_workers=2)
        a, b = np.zeros(5), np.zeros(5)
        eng.map_into(write_slot, list(range(5)), a)
        eng.map_into(lambda o, i: o.__setitem__(i, -float(i)), list(range(5)), b)
        assert np.array_equal(a, np.arange(5) * 10.0)
        assert np.array_equal(b, -np.arange(5, dtype=float))


class TestMapIntoInProcessEngines:
    @pytest.mark.parametrize("engine", [SerialEngine(), ThreadEngine(n_workers=3)])
    def test_map_into(self, engine):
        out = np.zeros(12)
        engine.map_into(write_slot, list(range(12)), out)
        assert np.array_equal(out, np.arange(12) * 10.0)

    def test_process_engine_has_no_map_into(self):
        # ProcessEngine workers write COW copies that the parent never
        # sees; drivers must fall back to its pickle-return map.
        assert not hasattr(ProcessEngine(n_workers=1), "map_into")


class TestMakeEngine:
    def test_kinds(self):
        assert isinstance(make_engine("serial"), SerialEngine)
        assert isinstance(make_engine("thread", n_workers=2), ThreadEngine)
        assert isinstance(make_engine("process", n_workers=1), ProcessEngine)
        assert isinstance(make_engine("sharedmem", n_workers=1), SharedMemoryEngine)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_engine("gpu")


class TestSharedArray:
    def test_create_write_read(self):
        sa = SharedArray.create((3, 3), "float64")
        try:
            sa.array[:] = 7.0
            assert sa.array.sum() == 63.0
        finally:
            sa.close()
            sa.unlink()

    def test_attach_sees_writes(self):
        sa = SharedArray.create((4,), "int64")
        try:
            sa.array[:] = 0
            dup = SharedArray.attach(*sa.handle())
            dup.array[2] = 42
            assert sa.array[2] == 42
            dup.close()
        finally:
            sa.close()
            sa.unlink()

    def test_from_array_copies(self, rng):
        src = rng.normal(size=(5, 2))
        sa = SharedArray.from_array(src)
        try:
            assert np.array_equal(sa.array, src)
        finally:
            sa.close()
            sa.unlink()

    def test_attacher_cannot_unlink(self):
        sa = SharedArray.create((2,), "float64")
        dup = SharedArray.attach(*sa.handle())
        try:
            with pytest.raises(RuntimeError):
                dup.unlink()
        finally:
            dup.close()
            sa.close()
            sa.unlink()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SharedArray.create((0,), "float64")

    def test_cross_process_writes(self):
        # Workers write disjoint slots of a shared output vector.
        sa = SharedArray.create((8,), "float64")
        try:
            sa.array[:] = -1.0
            handle = sa.handle()

            def worker(i):
                dup = SharedArray.attach(*handle)
                dup.array[i] = i * 10.0
                dup.close()
                return i

            eng = ProcessEngine(n_workers=2)
            eng.map(worker, list(range(8)))
            assert np.array_equal(sa.array, np.arange(8) * 10.0)
        finally:
            sa.close()
            sa.unlink()


class TestReductions:
    def test_linear_and_tree_agree(self, rng):
        parts = [rng.normal(size=4) for _ in range(9)]
        a = linear_reduce(parts, np.add)
        b = tree_reduce(parts, np.add)
        assert np.allclose(a, b)

    def test_single_part(self):
        assert tree_reduce([5], lambda a, b: a + b) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([], np.add)
        with pytest.raises(ValueError):
            linear_reduce([], np.add)

    def test_tree_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    def test_tree_depth_invalid(self):
        with pytest.raises(ValueError):
            tree_depth(0)

    def test_merge_histograms(self, rng):
        parts = [rng.integers(0, 5, size=(3, 3)).astype(float) for _ in range(4)]
        merged = merge_histograms(parts)
        assert np.allclose(merged, sum(parts))

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_histograms([np.zeros(3), np.zeros(4)])
