"""Tests for repro.core.entropy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bspline import weight_tensor
from repro.core.entropy import (
    entropy_from_counts,
    entropy_from_probs,
    joint_entropy_from_probs,
    marginal_entropies,
    marginal_probs,
    miller_madow_correction,
)


class TestEntropyFromProbs:
    def test_uniform_is_log_n(self):
        for n in (2, 4, 10):
            assert entropy_from_probs(np.full(n, 1 / n)) == pytest.approx(np.log(n))

    def test_point_mass_zero(self):
        p = np.zeros(5)
        p[2] = 1.0
        assert entropy_from_probs(p) == 0.0

    def test_zero_probs_ignored(self):
        assert entropy_from_probs(np.array([0.5, 0.5, 0.0])) == pytest.approx(np.log(2))

    def test_bits_vs_nats(self):
        p = np.array([0.25, 0.75])
        assert entropy_from_probs(p, base="bit") == pytest.approx(
            entropy_from_probs(p, base="nat") / np.log(2)
        )

    def test_axis_reduction(self, rng):
        p = rng.dirichlet(np.ones(6), size=4)
        h = entropy_from_probs(p, axis=1)
        assert h.shape == (4,)
        assert np.allclose(h[0], entropy_from_probs(p[0]))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            entropy_from_probs(np.array([-0.1, 1.1]))

    def test_validate_off_skips_scan(self):
        # Hot paths pass validate=False to skip the p.min() scan; negative
        # mass then flows through xlogy instead of raising.
        p = np.array([-0.1, 1.1])
        entropy_from_probs(p, validate=False)  # must not raise

    def test_validate_default_matches_explicit(self):
        p = np.random.default_rng(5).dirichlet(np.ones(8))
        assert entropy_from_probs(p) == entropy_from_probs(p, validate=False)

    def test_unknown_base_raises(self):
        with pytest.raises(ValueError):
            entropy_from_probs(np.array([1.0]), base="dit")

    @given(st.integers(2, 20), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, n, seed):
        p = np.random.default_rng(seed).dirichlet(np.ones(n))
        h = entropy_from_probs(p)
        assert -1e-12 <= h <= np.log(n) + 1e-12


class TestEntropyFromCounts:
    def test_matches_probs(self, rng):
        counts = rng.integers(0, 50, size=8).astype(float)
        counts[0] += 1  # ensure nonzero total
        p = counts / counts.sum()
        assert entropy_from_counts(counts) == pytest.approx(entropy_from_probs(p))

    def test_all_zero_counts(self):
        assert entropy_from_counts(np.zeros(4)) == 0.0


class TestMarginals:
    def test_marginal_probs_sum_to_one(self, rng):
        w = weight_tensor(rng.normal(size=(4, 50)))
        p = marginal_probs(w)
        assert p.shape == (4, 10)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_single_gene(self, rng):
        w = weight_tensor(rng.normal(size=(1, 50)))[0]
        p = marginal_probs(w)
        assert p.shape == (10,)
        assert p.sum() == pytest.approx(1.0)

    def test_marginal_entropies_vector(self, rng):
        w = weight_tensor(rng.normal(size=(5, 60)))
        h = marginal_entropies(w)
        assert h.shape == (5,)
        assert (h >= 0).all()
        assert np.allclose(h[1], entropy_from_probs(marginal_probs(w[1])))

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            marginal_probs(np.zeros(5))


class TestJointEntropy:
    def test_independent_product(self):
        p = np.array([0.3, 0.7])
        q = np.array([0.5, 0.5])
        joint = np.outer(p, q)
        assert joint_entropy_from_probs(joint) == pytest.approx(
            entropy_from_probs(p) + entropy_from_probs(q)
        )

    def test_tile_shape(self, rng):
        joint = rng.dirichlet(np.ones(16), size=(3, 4)).reshape(3, 4, 4, 4)
        h = joint_entropy_from_probs(joint)
        assert h.shape == (3, 4)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            joint_entropy_from_probs(np.array([0.5, 0.5]))

    def test_subadditivity(self, rng):
        # H(X, Y) <= H(X) + H(Y) for any joint.
        joint = rng.dirichlet(np.ones(36)).reshape(6, 6)
        hx = entropy_from_probs(joint.sum(axis=1))
        hy = entropy_from_probs(joint.sum(axis=0))
        assert joint_entropy_from_probs(joint) <= hx + hy + 1e-12

    def test_joint_at_least_marginal(self, rng):
        joint = rng.dirichlet(np.ones(25)).reshape(5, 5)
        hx = entropy_from_probs(joint.sum(axis=1))
        assert joint_entropy_from_probs(joint) >= hx - 1e-12


class TestMillerMadow:
    def test_zero_for_one_bin(self):
        assert miller_madow_correction(np.array([1]), 100)[0] == 0.0

    def test_formula(self):
        assert miller_madow_correction(np.array([11]), 50)[0] == pytest.approx(0.1)

    def test_shrinks_with_samples(self):
        a = miller_madow_correction(np.array([10]), 10)
        b = miller_madow_correction(np.array([10]), 1000)
        assert b < a

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            miller_madow_correction(np.array([5]), 0)


class TestJamesSteinShrinkage:
    def test_single_distribution_shrinks_toward_uniform(self):
        from repro.core.entropy import james_stein_shrinkage

        p = np.array([0.7, 0.2, 0.1, 0.0])
        out = james_stein_shrinkage(p, m_samples=20)
        assert out.shape == p.shape
        assert out.sum() == pytest.approx(1.0)
        # Shrinkage pulls extremes toward 1/B.
        assert out[0] < p[0] and out[3] > p[3]

    def test_joint_matrix_is_one_distribution(self):
        from repro.core.entropy import james_stein_shrinkage

        rng = np.random.default_rng(3)
        joint = rng.dirichlet(np.ones(25)).reshape(5, 5)
        out = james_stein_shrinkage(joint, m_samples=30)
        # A (b, b) joint is a single b^2-cell distribution: identical to
        # shrinking its flattened form.
        flat = james_stein_shrinkage(joint.ravel(), m_samples=30)
        assert np.array_equal(out.ravel(), flat)

    def test_batched_equals_per_entry_loop(self):
        # Regression: a batched (n, b, b) call used to pool all n*b*b cells
        # into one distribution, sharing a single shrinkage intensity.
        from repro.core.entropy import james_stein_shrinkage

        rng = np.random.default_rng(7)
        batch = np.stack([rng.dirichlet(np.ones(16)).reshape(4, 4)
                          for _ in range(6)])
        out = james_stein_shrinkage(batch, m_samples=25)
        assert out.shape == batch.shape
        for k in range(6):
            assert np.array_equal(out[k],
                                  james_stein_shrinkage(batch[k], m_samples=25))

    def test_batched_intensities_differ_per_entry(self):
        from repro.core.entropy import james_stein_shrinkage

        skewed = np.full((3, 3), 0.2 / 8)
        skewed[0, 0] = 0.8
        uniform = np.full((3, 3), 1 / 9)
        out = james_stein_shrinkage(np.stack([skewed, uniform]), m_samples=10)
        # The uniform entry is a fixed point; the skewed one moves.
        assert np.allclose(out[1], uniform)
        assert not np.allclose(out[0], skewed)

    def test_uniform_input_with_zero_denominator(self):
        from repro.core.entropy import james_stein_shrinkage

        uniform = np.full(8, 1 / 8)
        assert np.allclose(james_stein_shrinkage(uniform, 10), uniform)

    def test_rejects_bad_inputs(self):
        from repro.core.entropy import james_stein_shrinkage

        with pytest.raises(ValueError):
            james_stein_shrinkage(np.full(4, 0.25), m_samples=1)
        with pytest.raises(ValueError):
            james_stein_shrinkage(np.array([]), m_samples=5)
        with pytest.raises(ValueError):
            james_stein_shrinkage(np.array([-0.2, 1.2]), m_samples=5)
