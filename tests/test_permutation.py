"""Tests for repro.core.permutation: nulls, thresholds, p-values."""

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.mi import mi_bspline_pair
from repro.core.mi_matrix import mi_matrix
from repro.core.permutation import (
    NullDistribution,
    per_pair_pvalues,
    permuted_weights,
    pooled_null,
)


@pytest.fixture(scope="module")
def ranked_weights():
    rng = np.random.default_rng(5)
    data = rank_transform(rng.normal(size=(20, 120)))
    return weight_tensor(data)


class TestPermutedWeights:
    def test_rows_permuted(self, rng):
        w = weight_tensor(rng.normal(size=(1, 30)))[0]
        perm = rng.permutation(30)
        assert np.array_equal(permuted_weights(w, perm), w[perm])

    def test_tensor_form(self, rng):
        w = weight_tensor(rng.normal(size=(4, 25)))
        perm = rng.permutation(25)
        out = permuted_weights(w, perm)
        assert np.array_equal(out, w[:, perm])

    def test_identity_permutation_noop(self, rng):
        w = weight_tensor(rng.normal(size=(2, 20)))
        assert np.array_equal(permuted_weights(w, np.arange(20)), w)

    def test_marginal_invariant_under_permutation(self, rng):
        # Permutation preserves the marginal, hence H(X); only the joint moves.
        w = weight_tensor(rng.normal(size=(1, 50)))[0]
        perm = rng.permutation(50)
        assert np.allclose(w.mean(axis=0), permuted_weights(w, perm).mean(axis=0))

    def test_rejects_wrong_length(self, rng):
        w = weight_tensor(rng.normal(size=(2, 20)))
        with pytest.raises(ValueError):
            permuted_weights(w, np.arange(19))

    def test_rejects_non_permutation(self, rng):
        w = weight_tensor(rng.normal(size=(1, 5)))[0]
        with pytest.raises(ValueError):
            permuted_weights(w, np.array([0, 0, 1, 2, 3]))


class TestPooledNull:
    def test_size_and_metadata(self, ranked_weights):
        null = pooled_null(ranked_weights, n_permutations=7, n_pairs=13, seed=0)
        assert null.size == 7 * 13
        assert null.n_permutations == 7
        assert null.n_pairs_sampled == 13

    def test_reproducible(self, ranked_weights):
        a = pooled_null(ranked_weights, 5, 10, seed=3)
        b = pooled_null(ranked_weights, 5, 10, seed=3)
        assert np.array_equal(a.mis, b.mis)

    def test_nonnegative(self, ranked_weights):
        null = pooled_null(ranked_weights, 5, 20, seed=1)
        assert (null.mis >= 0).all()

    def test_null_below_dependent_mi(self, rng):
        # A strongly coupled pair's MI should exceed essentially all null values.
        x = rng.normal(size=200)
        data = rank_transform(np.vstack([x, x + 0.1 * rng.normal(size=200),
                                         rng.normal(size=(8, 200))]))
        w = weight_tensor(data)
        null = pooled_null(w, 20, 30, seed=2)
        observed = mi_bspline_pair(w[0], w[1])
        assert observed > np.quantile(null.mis, 0.999)

    def test_matches_manual_computation(self, ranked_weights):
        # Reconstruct the first null value by hand using the same RNG stream.
        from repro.stats.random import as_rng, permutation_matrix, sample_pairs

        rng = as_rng(42)
        pairs = sample_pairs(20, 4, rng)
        perms = permutation_matrix(3, 120, rng)
        null = pooled_null(ranked_weights, 3, 4, seed=42)
        wi = ranked_weights[pairs[0, 0]][perms[0]]
        wj = ranked_weights[pairs[0, 1]]
        assert null.mis[0] == pytest.approx(mi_bspline_pair(wi, wj), rel=1e-10)

    def test_threshold_monotone_in_alpha(self, ranked_weights):
        null = pooled_null(ranked_weights, 20, 50, seed=0)
        t_strict = null.threshold(alpha=0.001, n_tests=100)
        t_loose = null.threshold(alpha=0.5, n_tests=100)
        assert t_strict >= t_loose

    def test_pvalues_interface(self, ranked_weights):
        null = pooled_null(ranked_weights, 10, 30, seed=0)
        p = null.pvalues(np.array([0.0, 1e9]))
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(1.0 / (null.size + 1))

    def test_invalid_args(self, ranked_weights):
        with pytest.raises(ValueError):
            pooled_null(ranked_weights, 0, 10)
        with pytest.raises(ValueError):
            pooled_null(ranked_weights, 10, 0)
        with pytest.raises(ValueError):
            pooled_null(ranked_weights[0], 5, 5)


class TestPerPairPvalues:
    def test_dependent_pair_significant(self, rng):
        x = rng.normal(size=150)
        data = rank_transform(np.vstack([x, x + 0.1 * rng.normal(size=150),
                                         rng.normal(size=150)]))
        w = weight_tensor(data)
        obs, p = per_pair_pvalues(w, np.array([[0, 1], [0, 2]]), n_permutations=60, seed=0)
        assert p[0] == pytest.approx(1.0 / 61.0)  # beats every permutation
        assert p[1] > 0.05  # independent pair not significant

    def test_observed_matches_kernel(self, ranked_weights):
        pairs = np.array([[0, 1], [5, 9]])
        obs, _ = per_pair_pvalues(ranked_weights, pairs, n_permutations=5, seed=0)
        for (i, j), o in zip(pairs, obs):
            assert o == pytest.approx(mi_bspline_pair(ranked_weights[i], ranked_weights[j]))

    def test_agrees_with_pooled_on_independent_data(self, rng):
        # On fully independent rank-transformed genes, pooled-null p-values
        # and per-pair p-values must be statistically indistinguishable:
        # compare medians loosely.
        data = rank_transform(rng.normal(size=(10, 100)))
        w = weight_tensor(data)
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        _, p_exact = per_pair_pvalues(w, pairs, n_permutations=50, seed=1)
        null = pooled_null(w, 50, 40, seed=2)
        res = mi_matrix(w)
        p_pooled = null.pvalues(res.mi[pairs[:, 0], pairs[:, 1]])
        assert np.median(np.abs(p_exact - p_pooled)) < 0.35

    def test_rejects_bad_pairs(self, ranked_weights):
        with pytest.raises(ValueError):
            per_pair_pvalues(ranked_weights, np.array([0, 1]))


class TestPooledNullEngineDispatch:
    def test_engine_paths_bit_identical(self, ranked_weights):
        from repro.parallel.engine import ProcessEngine, SerialEngine, ThreadEngine

        serial = pooled_null(ranked_weights, 8, 40, seed=13)
        for engine in (SerialEngine(), ThreadEngine(n_workers=3),
                       ProcessEngine(n_workers=3)):
            parallel = pooled_null(ranked_weights, 8, 40, seed=13, engine=engine)
            assert np.array_equal(serial.mis, parallel.mis), type(engine).__name__
            assert parallel.n_permutations == 8
            assert parallel.n_pairs_sampled == 40


class TestPerPairVectorization:
    def test_matches_per_permutation_reference_loop(self, ranked_weights):
        # Regression: the permutation dimension is vectorized with a stacked
        # batched matmul; results must be bit-identical to evaluating one
        # permutation at a time with the pair kernel.
        from repro.stats.random import as_rng, permutation_matrix

        pairs = np.array([[0, 1], [3, 7], [2, 19], [10, 11]])
        q = 40
        observed, pvals = per_pair_pvalues(ranked_weights, pairs,
                                           n_permutations=q, seed=21)

        n, m, b = ranked_weights.shape
        perms = permutation_matrix(q, m, as_rng(21))
        ref_obs = np.empty(len(pairs))
        ref_p = np.empty(len(pairs))
        for idx, (i, j) in enumerate(pairs):
            wx, wy = ranked_weights[i], ranked_weights[j]
            ref_obs[idx] = mi_bspline_pair(wx, wy)
            null = np.array([mi_bspline_pair(wx[perms[r]], wy) for r in range(q)])
            exceed = int(np.count_nonzero(null >= ref_obs[idx]))
            ref_p[idx] = (1.0 + exceed) / (1.0 + q)
        assert np.array_equal(observed, ref_obs)
        assert np.array_equal(pvals, ref_p)
