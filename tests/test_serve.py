"""Tests for repro.serve — the reconstruction job daemon.

Unit tests cover the queue (priority/FIFO/admission), the result cache
and submission validation; the e2e tests start a real HTTP server on an
ephemeral port and drive it with urllib: submit/poll/fetch, the cache
hit on identical resubmission (asserting *zero* tiles run), checkpoint
resume after a simulated mid-run kill, admission-control rejections,
graceful drain, and a chaos run with injected faults through the daemon.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.data import save_dataset, simulate_expression
from repro.data.grn import scale_free_grn
from repro.faults import REPRO_FAULTS_ENV, FaultPlan
from repro.serve import (
    Job,
    JobQueue,
    JobStore,
    QueueFull,
    QuotaExceeded,
    ResultCache,
    ServeApp,
    make_server,
)
from repro.serve.runner import ValidationError, validate_submission

N_GENES = 12
M_SAMPLES = 40
CONFIG = {"n_permutations": 5, "n_null_pairs": 30, "alpha": 0.05,
          "tile": 4, "seed": 7}


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    ds = simulate_expression(scale_free_grn(N_GENES, seed=0), M_SAMPLES, seed=0)
    path = tmp_path_factory.mktemp("serve-data") / "expr.npz"
    save_dataset(ds, path)
    return path


@pytest.fixture(scope="module")
def reference_network(dataset_path):
    """What an offline run produces for (dataset, CONFIG) — the ground truth
    every served result must match bit-for-bit."""
    from repro.data import load_dataset

    ds = load_dataset(dataset_path)
    result = reconstruct_network(ds.expression, ds.genes, TingeConfig(**CONFIG))
    return result.network


class _Client:
    """Tiny urllib front-end for one live daemon."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def _request(self, req):
        try:
            with urllib.request.urlopen(req, timeout=10) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def get(self, path):
        return self._request(urllib.request.Request(self.base + path))

    def post(self, path, payload):
        return self._request(urllib.request.Request(
            self.base + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}))

    def wait(self, job_id, deadline=30.0):
        """Poll until the job reaches a terminal state; returns the status."""
        t0 = time.monotonic()
        while time.monotonic() - t0 < deadline:
            code, status = self.get(f"/jobs/{job_id}")
            assert code == 200
            if status["state"] in ("done", "failed", "interrupted"):
                return status
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} not terminal after {deadline}s: {status}")


@pytest.fixture
def daemon(tmp_path):
    """A live ServeApp + HTTP server on an ephemeral port."""
    app = ServeApp(tmp_path / "state", n_workers=2)
    server = make_server(app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield app, _Client(server.server_address[1])
    app.drain(timeout=10)
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _submit(client, dataset_path, **overrides):
    payload = {"dataset": str(dataset_path), "config": dict(CONFIG)}
    payload.update(overrides)
    return client.post("/jobs", payload)


class TestJobQueue:
    def _job(self, **kw):
        kw.setdefault("dataset", "x.npz")
        kw.setdefault("config", {})
        return Job(**kw)

    def test_priority_then_fifo(self):
        q = JobQueue(JobStore())
        low1 = self._job(priority=0)
        high = self._job(priority=5)
        low2 = self._job(priority=0)
        for j in (low1, high, low2):
            q.submit(j)
        assert q.pop() is high
        assert q.pop() is low1  # FIFO among equal priorities
        assert q.pop() is low2

    def test_depth_cap(self):
        q = JobQueue(JobStore(), max_depth=2)
        q.submit(self._job())
        q.submit(self._job())
        with pytest.raises(QueueFull, match="depth cap"):
            q.submit(self._job())

    def test_tenant_quota_counts_active(self):
        store = JobStore()
        q = JobQueue(store, tenant_quota=2)
        a = self._job(tenant="a")
        q.submit(a)
        q.submit(self._job(tenant="a"))
        with pytest.raises(QuotaExceeded, match="'a'"):
            q.submit(self._job(tenant="a"))
        q.submit(self._job(tenant="b"))  # other tenants unaffected
        # a running job still holds a quota slot; a finished one frees it.
        q.pop()
        a.state = "running"
        with pytest.raises(QuotaExceeded):
            q.submit(self._job(tenant="a"))
        a.state = "done"
        q.submit(self._job(tenant="a"))

    def test_close_rejects_and_drains(self):
        q = JobQueue(JobStore())
        q.submit(self._job())
        q.close()
        with pytest.raises(QueueFull, match="draining"):
            q.submit(self._job())
        assert q.pop() is not None  # already-admitted jobs still drain
        assert q.pop() is None  # closed + empty -> shutdown signal

    def test_pop_timeout(self):
        q = JobQueue(JobStore())
        t0 = time.monotonic()
        assert q.pop(timeout=0.05) is None
        assert time.monotonic() - t0 < 2.0


class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path, reference_network):
        cache = ResultCache(tmp_path)
        assert cache.get("k" * 32) is None
        cache.put("k" * 32, reference_network, meta={"dataset": "d.npz"})
        hit = cache.get("k" * 32)
        assert hit is not None
        assert hit.meta["dataset"] == "d.npz"
        assert hit.network.n_edges == reference_network.n_edges
        np.testing.assert_array_equal(hit.network.weights,
                                      reference_network.weights)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_partial_entry_is_a_miss(self, tmp_path, reference_network):
        cache = ResultCache(tmp_path)
        cache.put("a" * 32, reference_network)
        (tmp_path / f"{'a' * 32}.npz").unlink()  # crash between npz and meta
        assert cache.get("a" * 32) is None
        (tmp_path / f"{'a' * 32}.json").write_text("{corrupt")
        assert cache.get("a" * 32) is None


class TestValidation:
    def test_happy_path(self, dataset_path):
        job = validate_submission({"dataset": str(dataset_path),
                                   "config": dict(CONFIG), "priority": 3})
        assert job.priority == 3 and job.tenant == "default"

    @pytest.mark.parametrize("payload,match", [
        ({}, "'dataset'"),
        ({"dataset": "missing.npz"}, "not found"),
        ({"dataset": "x.csv"}, "unsupported dataset format"),
        ({"dataset": "PLACEHOLDER", "config": {"bogus": 1}}, "bad config field"),
        ({"dataset": "PLACEHOLDER", "config": {"alpha": 2.0}}, "bad config"),
        ({"dataset": "PLACEHOLDER", "config": {"testing": "exact"}}, "pooled"),
        ({"dataset": "PLACEHOLDER", "engine": "gpu"}, "unknown engine"),
        ({"dataset": "PLACEHOLDER", "workers": 0}, "workers"),
        ({"dataset": "PLACEHOLDER", "typo": 1}, "unknown field"),
    ])
    def test_rejections(self, dataset_path, payload, match):
        if payload.get("dataset") == "PLACEHOLDER":
            payload["dataset"] = str(dataset_path)
        with pytest.raises(ValidationError, match=match):
            validate_submission(payload)


class TestServeEndToEnd:
    def test_submit_poll_fetch(self, daemon, dataset_path, reference_network):
        _app, client = daemon
        code, body = _submit(client, dataset_path)
        assert code == 202 and body["state"] == "queued"
        status = client.wait(body["job_id"])
        assert status["state"] == "done"
        assert status["cached"] is False
        # Phase timings surfaced from the per-job tracer spans.
        assert set(status["phases"]) == {"preprocess", "weights", "null",
                                         "mi", "threshold"}
        assert all(t >= 0 for t in status["phases"].values())
        assert status["progress"]["done"] == status["progress"]["total"]
        code, result = client.get(f"/jobs/{body['job_id']}/result")
        assert code == 200
        assert result["n_genes"] == N_GENES
        # Bit-identical to the offline pipeline on the same (data, config).
        assert result["threshold"] == float(reference_network.threshold)
        assert [tuple(e) for e in result["edges"]] == reference_network.edge_list()

    def test_identical_resubmission_is_served_from_cache(self, daemon,
                                                         dataset_path):
        _app, client = daemon
        _, first = _submit(client, dataset_path)
        status1 = client.wait(first["job_id"])
        assert status1["counters"].get("tiles_done", 0) > 0
        _, second = _submit(client, dataset_path)
        status2 = client.wait(second["job_id"])
        assert status2["state"] == "done"
        assert status2["cached"] is True
        assert status2["cache_key"] == status1["cache_key"]
        # The acceptance criterion: a cache hit runs no tiles at all.
        assert status2["counters"].get("tiles_done", 0) == 0
        assert status2["counters"].get("rows_done", 0) == 0
        _, r1 = client.get(f"/jobs/{first['job_id']}/result")
        _, r2 = client.get(f"/jobs/{second['job_id']}/result")
        assert r1["edges"] == r2["edges"]
        assert r2["cached"] is True

    def test_different_config_misses_cache(self, daemon, dataset_path):
        _app, client = daemon
        _, first = _submit(client, dataset_path)
        client.wait(first["job_id"])
        cfg = dict(CONFIG, alpha=0.01)
        _, second = _submit(client, dataset_path, config=cfg)
        status = client.wait(second["job_id"])
        assert status["cached"] is False
        assert status["cache_key"] != client.wait(first["job_id"])["cache_key"]

    def test_interrupted_job_resumes_on_resubmission(self, daemon, dataset_path,
                                                     reference_network):
        _app, client = daemon
        # interrupt_after_rows simulates a mid-run kill: the worker stops
        # after one committed block-row, leaving the ledger on disk.
        code, body = _submit(client, dataset_path, interrupt_after_rows=1)
        assert code == 202
        status = client.wait(body["job_id"])
        assert status["state"] == "interrupted"
        code, _err = client.get(f"/jobs/{body['job_id']}/result")
        assert code == 409
        # Same (dataset, config) -> same cache key -> same checkpoint dir:
        # the resubmission resumes instead of recomputing.
        _, again = _submit(client, dataset_path)
        status2 = client.wait(again["job_id"])
        assert status2["state"] == "done"
        n_rows = len(range(0, N_GENES, CONFIG["tile"]))
        resumed_rows = status2["counters"].get("rows_done", 0)
        assert 0 < resumed_rows < n_rows  # strictly fewer rows than a cold run
        _, result = client.get(f"/jobs/{again['job_id']}/result")
        assert result["threshold"] == float(reference_network.threshold)
        assert [tuple(e) for e in result["edges"]] == reference_network.edge_list()

    def test_result_conflict_and_not_found(self, daemon, dataset_path):
        _app, client = daemon
        assert client.get("/jobs/nope")[0] == 404
        assert client.get("/jobs/nope/result")[0] == 404
        assert client.get("/bogus")[0] == 404
        assert client.post("/bogus", {})[0] == 404
        code, body = client.post("/jobs", {"dataset": "missing.npz"})
        assert code == 400 and "not found" in body["error"]

    def test_health_endpoint(self, daemon, dataset_path):
        _app, client = daemon
        code, health = client.get("/healthz")
        assert code == 200 and health["status"] == "ok"
        assert health["workers"] == 2
        _, body = _submit(client, dataset_path)
        client.wait(body["job_id"])
        _, health = client.get("/healthz")
        assert health["jobs"].get("done") == 1
        assert health["cache"]["entries"] == 1


class TestAdmissionOverHTTP:
    @pytest.fixture
    def gated_daemon(self, tmp_path, monkeypatch):
        """Daemon whose single worker blocks until the test releases it,
        so queue depth and quota states are deterministic."""
        release = threading.Event()
        started = threading.Event()

        def fake_execute(job, cache, state_dir, datasets=None):
            job.state = "running"
            started.set()
            release.wait(timeout=30)
            job.state = "done"
            job.result = {"job_id": job.job_id}

        monkeypatch.setattr("repro.serve.app.execute_job", fake_execute)
        app = ServeApp(tmp_path / "state", n_workers=1, max_depth=1,
                       tenant_quota=2)
        server = make_server(app)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        yield _Client(server.server_address[1]), release, started
        release.set()
        app.drain(timeout=10)
        server.shutdown()
        server.server_close()

    def test_depth_cap_and_quota_429(self, gated_daemon, dataset_path):
        client, release, started = gated_daemon
        code, _ = _submit(client, dataset_path)  # occupies the worker
        assert code == 202
        assert started.wait(timeout=10)
        # Tenant "default" now has 1 running job; quota is 2, depth cap 1.
        code, _ = _submit(client, dataset_path)  # fills the queue slot
        assert code == 202
        code, body = _submit(client, dataset_path, tenant="other")
        assert code == 429 and "depth cap" in body["error"]
        release.set()

    def test_health_reports_queue_depth_and_tenants(self, gated_daemon,
                                                    dataset_path):
        client, release, started = gated_daemon
        _, health = client.get("/healthz")
        assert health["queue_depth"] == {"current": 0, "max": 1}
        assert health["tenants"] == {}
        _submit(client, dataset_path)                  # occupies the worker
        assert started.wait(timeout=10)
        _submit(client, dataset_path, tenant="other")  # sits in the queue
        _, health = client.get("/healthz")
        assert health["queue_depth"] == {"current": 1, "max": 1}
        assert health["tenants"] == {"default": 1, "other": 1}
        release.set()

    def test_quota_rejection(self, gated_daemon, dataset_path):
        client, release, started = gated_daemon
        _submit(client, dataset_path)
        assert started.wait(timeout=10)
        _submit(client, dataset_path)  # queued: tenant now at quota 2
        code, body = _submit(client, dataset_path)
        # Both admission rules would reject; quota is checked after depth.
        assert code == 429
        release.set()

class TestDrain:
    def test_drain_finishes_admitted_jobs(self, tmp_path, dataset_path):
        app = ServeApp(tmp_path / "state", n_workers=1)
        server = make_server(app)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = _Client(server.server_address[1])
        codes = [_submit(client, dataset_path)[0] for _ in range(2)]
        assert codes == [202, 202]
        assert app.drain(timeout=60) is True
        # Every admitted job ran to completion during the drain.
        assert app.store.counts() == {"done": 2}
        code, body = _submit(client, dataset_path)
        assert code == 503 and "draining" in body["error"]
        server.shutdown()
        server.server_close()


class TestServeCLI:
    def test_daemon_process_sigterm_drains(self, tmp_path, dataset_path):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(tmp_path / "state"), "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            line = proc.stdout.readline()
            m = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert m, f"no listen line: {line!r}"
            client = _Client(int(m.group(1)))
            code, body = _submit(client, dataset_path)
            assert code == 202
            assert client.wait(body["job_id"])["state"] == "done"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "drained" in out and "'done': 1" in out
        finally:
            if proc.poll() is None:
                proc.kill()


class TestChaosThroughDaemon:
    def test_injected_faults_retry_to_identical_result(self, daemon,
                                                       dataset_path,
                                                       reference_network,
                                                       monkeypatch):
        # Deterministic injected crashes in the tile tasks; the job's
        # fault policy retries them (faulted tasks run clean on retry).
        monkeypatch.setenv(REPRO_FAULTS_ENV,
                           FaultPlan(seed=3, rate=0.5, kinds=("crash",)).to_env())
        _app, client = daemon
        cfg = dict(CONFIG, max_retries=3, on_fault="retry")
        code, body = _submit(client, dataset_path, config=cfg, engine="thread")
        assert code == 202
        status = client.wait(body["job_id"], deadline=60)
        assert status["state"] == "done", status["error"]
        assert status["counters"].get("task_retries", 0) > 0
        assert status["quarantined"] == []
        _, result = client.get(f"/jobs/{body['job_id']}/result")
        # Faults + retries must not change a single bit of the network.
        assert result["threshold"] == float(reference_network.threshold)
        assert [tuple(e) for e in result["edges"]] == reference_network.edge_list()

    def test_quarantined_result_is_not_cached(self, daemon, dataset_path,
                                              monkeypatch):
        # Sticky faults (max_failures=None) exhaust every retry; the job
        # finishes with quarantined NaN blocks, which must never enter the
        # result cache — a resubmission gets a fresh (clean) run.
        monkeypatch.setenv(REPRO_FAULTS_ENV,
                           FaultPlan(seed=3, rate=0.4, kinds=("crash",),
                                     max_failures=None).to_env())
        app, client = daemon
        cfg = dict(CONFIG, max_retries=1, on_fault="quarantine")
        _, body = _submit(client, dataset_path, config=cfg, engine="thread")
        status = client.wait(body["job_id"], deadline=60)
        assert status["state"] == "done"
        assert status["quarantined"], "fault plan should have poisoned tiles"
        assert app.cache.stats()["entries"] == 0
        monkeypatch.delenv(REPRO_FAULTS_ENV)
        # The resubmission is not served from cache; it resumes the ledger,
        # whose persisted quarantine records still mark the poison blocks.
        _, again = _submit(client, dataset_path, config=cfg, engine="thread")
        status2 = client.wait(again["job_id"], deadline=60)
        assert status2["state"] == "done"
        assert status2["cached"] is False
        assert status2["quarantined"] == status["quarantined"]
        assert app.cache.stats()["entries"] == 0


# -- streaming dataset subscriptions -------------------------------------

# Sized so the dirty-tile screen genuinely skips work (tiny fixtures mark
# every pair dirty, which would defeat the proper-subset assertions).
STREAM_N, STREAM_M, STREAM_DM = 60, 200, 2
STREAM_CONFIG = {"n_permutations": 10, "n_null_pairs": 80, "alpha": 0.01,
                 "tile": 8, "seed": 3}


@pytest.fixture(scope="module")
def stream_data():
    """A mostly-null expression block with a few coupled gene pairs, split
    into the registered matrix and the to-be-streamed columns."""
    rng = np.random.default_rng(5)
    full = rng.normal(size=(STREAM_N, STREAM_M + STREAM_DM))
    for k in range(STREAM_N // 6):
        full[2 * k + 1] = full[2 * k] + 0.3 * rng.normal(
            size=STREAM_M + STREAM_DM)
    genes = [f"g{i:03d}" for i in range(STREAM_N)]
    return genes, full[:, :STREAM_M], full[:, STREAM_M:]


@pytest.fixture(scope="module")
def stream_reference(stream_data):
    """Offline ground truth for the registered and the grown dataset."""
    genes, data, new = stream_data
    cfg = TingeConfig(**STREAM_CONFIG)
    base = reconstruct_network(data, genes, cfg).network
    grown = reconstruct_network(np.hstack([data, new]), genes, cfg).network
    return base, grown


def _ds_payload(genes, data, **overrides):
    payload = {"genes": list(genes),
               "data": [[float(v) for v in row] for row in data],
               "config": dict(STREAM_CONFIG)}
    payload.update(overrides)
    return payload


def _register(client, genes, data, **overrides):
    """POST /datasets and wait for the bootstrap job; returns (id, status)."""
    code, body = client.post("/datasets", _ds_payload(genes, data, **overrides))
    assert code == 202, body
    assert body["created"] is True
    status = client.wait(body["job_id"], deadline=60)
    assert status["state"] == "done", status["error"]
    return body["dataset_id"], status


class TestDatasetEndpoints:
    def test_register_snapshot_and_events(self, daemon, stream_data,
                                          stream_reference):
        app, client = daemon
        genes, data, _ = stream_data
        base, _grown = stream_reference
        ds_id, status = _register(client, genes, data)
        assert status["kind"] == "dataset_init"
        assert status["dataset_id"] == ds_id

        code, ds = client.get(f"/datasets/{ds_id}")
        assert code == 200
        assert ds["ready"] is True
        assert ds["version"] == 1
        assert ds["n_samples"] == STREAM_M
        assert ds["pending_batches"] == 0

        # The bootstrap snapshot event carries the offline-identical network.
        _, feed = client.get(f"/datasets/{ds_id}/events")
        assert feed["latest"] == 1
        (event,) = feed["events"]
        assert event["kind"] == "snapshot"
        assert event["threshold"] == float(base.threshold)
        assert event["n_edges"] == base.n_edges

        _, listing = client.get("/datasets")
        assert [d["dataset_id"] for d in listing["datasets"]] == [ds_id]
        _, health = client.get("/healthz")
        assert health["datasets"] == 1

    def test_register_is_idempotent(self, daemon, stream_data):
        _app, client = daemon
        genes, data, _ = stream_data
        ds_id, _ = _register(client, genes, data)
        # Same genes+data+config hash to the same fingerprint: no new
        # dataset, no new job — the daemon just points at the live state.
        code, body = client.post("/datasets", _ds_payload(genes, data))
        assert code == 200
        assert body["created"] is False
        assert body["dataset_id"] == ds_id
        assert body["job_id"] is None

    def test_samples_increment_bit_identical(self, daemon, stream_data,
                                             stream_reference):
        app, client = daemon
        genes, data, new = stream_data
        _base, grown = stream_reference
        ds_id, _ = _register(client, genes, data)

        code, body = client.post(
            f"/datasets/{ds_id}/samples",
            {"data": [[float(v) for v in row] for row in new]})
        assert code == 202
        assert body["pending_batches"] == 1
        status = client.wait(body["job_id"], deadline=60)
        assert status["state"] == "done", status["error"]
        result_code, result = client.get(f"/jobs/{body['job_id']}/result")
        assert result_code == 200

        # The served network must be the offline grown-dataset run, bit
        # for bit — threshold via the API, adjacency via the cache entry.
        assert result["version"] == 2
        assert result["n_samples"] == STREAM_M + STREAM_DM
        assert result["threshold"] == float(grown.threshold)
        assert result["n_edges"] == grown.n_edges
        hit = app.cache.get(result["cache_key"])
        assert hit is not None
        assert np.array_equal(hit.network.adjacency, grown.adjacency)
        assert np.array_equal(hit.network.weights[grown.adjacency],
                              grown.weights[grown.adjacency])

        # The delta event is the subscription's payload: edge churn plus
        # proof that only a proper subset of pairs was replayed.
        event = result["event"]
        assert event["kind"] == "delta"
        assert 0 < event["pairs_recomputed"] < event["pairs_total"]
        assert event["n_samples_after"] == STREAM_M + STREAM_DM
        # Cursor semantics: seq 1 is the snapshot, seq 2 the delta.
        _, feed = client.get(f"/datasets/{ds_id}/events?since=1")
        assert [e["seq"] for e in feed["events"]] == [2]
        assert feed["events"][0]["kind"] == "delta"
        _, empty = client.get(f"/datasets/{ds_id}/events?since=2")
        assert empty["events"] == [] and empty["latest"] == 2

    def test_registry_state_survives_on_disk(self, daemon, stream_data):
        """A fresh registry over the same state dir sees the committed
        version and the event log (the daemon-restart contract)."""
        from repro.serve.datasets import DatasetRegistry

        app, client = daemon
        genes, data, new = stream_data
        ds_id, _ = _register(client, genes, data)
        _, body = client.post(
            f"/datasets/{ds_id}/samples",
            {"data": [[float(v) for v in row] for row in new]})
        client.wait(body["job_id"], deadline=60)

        reloaded = DatasetRegistry(app.state_dir / "datasets")
        ds = reloaded.get(ds_id)
        assert ds is not None
        assert ds.version == 2
        assert ds.data.shape == (STREAM_N, STREAM_M + STREAM_DM)
        assert [e["kind"] for e in ds.events] == ["snapshot", "delta"]
        assert ds.updater is None  # rebuilt lazily by the next job

    def test_validation_rejections(self, daemon, stream_data):
        _app, client = daemon
        genes, data, _ = stream_data
        # BH needs every p-value: incompatible with streaming recompute.
        code, body = client.post("/datasets", _ds_payload(
            genes, data, config=dict(STREAM_CONFIG, correction="bh")))
        assert code == 400 and "correction" in body["error"]
        code, _ = client.post("/datasets/nope/samples", {"data": [[0.0]]})
        assert code == 404
        code, body = client.get("/datasets/nope")
        assert code == 404
        ds_id, _ = _register(client, genes, data)
        # An empty post is only meaningful as a resume of staged work.
        code, body = client.post(f"/datasets/{ds_id}/samples", {})
        assert code == 400 and "pending" in body["error"]
        code, _ = client.get(f"/datasets/{ds_id}/events?since=abc")
        assert code == 400


class TestDatasetResume:
    def test_interrupted_increment_resumes_from_ledger(self, daemon,
                                                       stream_data,
                                                       stream_reference):
        app, client = daemon
        genes, data, new = stream_data
        _base, grown = stream_reference
        ds_id, _ = _register(client, genes, data)

        # Kill the replay after one dirty row: the job parks as
        # interrupted, the staged batch and the ledger both survive, and
        # nothing is committed.
        _, body = client.post(
            f"/datasets/{ds_id}/samples",
            {"data": [[float(v) for v in row] for row in new],
             "interrupt_after_rows": 1})
        status = client.wait(body["job_id"], deadline=60)
        assert status["state"] == "interrupted"
        assert "resume" in status["error"]
        _, ds = client.get(f"/datasets/{ds_id}")
        assert ds["version"] == 1
        assert ds["pending_batches"] == 1
        assert ds["n_samples"] == STREAM_M

        # An empty follow-up post resumes: the ledger replays only the
        # still-dirty rows and the commit is bit-identical to offline.
        code, retry = client.post(f"/datasets/{ds_id}/samples", {})
        assert code == 202
        status = client.wait(retry["job_id"], deadline=60)
        assert status["state"] == "done", status["error"]
        _, result = client.get(f"/jobs/{retry['job_id']}/result")
        assert result["version"] == 2
        assert result["threshold"] == float(grown.threshold)
        assert result["n_edges"] == grown.n_edges
        hit = app.cache.get(result["cache_key"])
        assert np.array_equal(hit.network.adjacency, grown.adjacency)
        _, ds = client.get(f"/datasets/{ds_id}")
        assert ds["pending_batches"] == 0 and ds["version"] == 2


class TestDatasetChaos:
    def test_faulted_increment_retries_to_identical_result(self, daemon,
                                                           stream_data,
                                                           stream_reference,
                                                           monkeypatch):
        """REPRO_FAULTS through the daemon's dataset path: injected
        crashes in the dirty-tile replay are retried by the dataset's
        fault policy and the committed delta is bitwise unaffected."""
        app, client = daemon
        genes, data, new = stream_data
        _base, grown = stream_reference
        ds_id, _ = _register(
            client, genes, data,
            config=dict(STREAM_CONFIG, max_retries=3, on_fault="retry"),
            engine="thread")

        monkeypatch.setenv(REPRO_FAULTS_ENV,
                           FaultPlan(seed=3, rate=0.5, kinds=("crash",)).to_env())
        _, body = client.post(
            f"/datasets/{ds_id}/samples",
            {"data": [[float(v) for v in row] for row in new]})
        status = client.wait(body["job_id"], deadline=60)
        assert status["state"] == "done", status["error"]
        assert status["counters"].get("task_retries", 0) > 0
        assert status["quarantined"] == []
        _, result = client.get(f"/jobs/{body['job_id']}/result")
        assert result["threshold"] == float(grown.threshold)
        assert result["n_edges"] == grown.n_edges
        hit = app.cache.get(result["cache_key"])
        assert np.array_equal(hit.network.adjacency, grown.adjacency)
