"""Tests for repro.data.expression and repro.data.datasets."""

import numpy as np
import pytest

from repro.core.mi import mi_bspline
from repro.data.datasets import (
    ARABIDOPSIS_SHAPE,
    arabidopsis_scale,
    microarray_dataset,
    toy,
    yeast_subset,
)
from repro.data.expression import ExpressionDataset, simulate_expression
from repro.data.grn import GroundTruthNetwork, scale_free_grn


class TestSimulateExpression:
    def test_shape(self):
        truth = scale_free_grn(30, seed=0)
        ds = simulate_expression(truth, 100, seed=1)
        assert ds.expression.shape == (30, 100)
        assert ds.n_genes == 30 and ds.m_samples == 100

    def test_reproducible(self):
        truth = scale_free_grn(20, seed=0)
        a = simulate_expression(truth, 50, seed=3)
        b = simulate_expression(truth, 50, seed=3)
        assert np.array_equal(a.expression, b.expression)

    def test_regulated_pairs_carry_mi(self):
        truth = scale_free_grn(40, n_regulators=4, seed=1)
        ds = simulate_expression(truth, 400, noise_sd=0.2, seed=2)
        # A directly regulated pair should have much higher MI than a random
        # unrelated pair.
        r, t = truth.edges[0]
        linked = mi_bspline(ds.expression[r], ds.expression[t])
        # Find two genes with no direct edge and different regulators.
        unlinked = mi_bspline(ds.expression[4], ds.expression[5]) if not (
            [4, 5] in truth.edges.tolist()
        ) else 0.0
        assert linked > 0.05

    def test_noise_free_deterministic_link(self):
        truth = GroundTruthNetwork(n_genes=2, edges=[[0, 1]], strengths=[1.0])
        ds = simulate_expression(truth, 200, noise_sd=0.0, nonlinear_fraction=0.0, seed=0)
        corr = np.corrcoef(ds.expression[0], ds.expression[1])[0, 1]
        assert abs(corr) > 0.999

    def test_higher_noise_lower_mi(self):
        truth = GroundTruthNetwork(n_genes=2, edges=[[0, 1]], strengths=[1.0])
        lo = simulate_expression(truth, 500, noise_sd=0.1, nonlinear_fraction=0.0, seed=1)
        hi = simulate_expression(truth, 500, noise_sd=2.0, nonlinear_fraction=0.0, seed=1)
        assert mi_bspline(lo.expression[0], lo.expression[1]) > mi_bspline(
            hi.expression[0], hi.expression[1]
        )

    def test_nonlinear_links_low_correlation_high_mi(self):
        # Force all-quadratic links: Pearson should be weak, MI strong.
        import repro.data.expression as ex

        truth = GroundTruthNetwork(n_genes=2, edges=[[0, 1]], strengths=[1.0])
        rng_ds = simulate_expression(truth, 600, noise_sd=0.1, nonlinear_fraction=1.0, seed=7)
        x, y = rng_ds.expression
        # With nonlinear_fraction=1 the link is sigmoid or quadratic; only
        # assert the MI signal survives.
        assert mi_bspline(x, y) > 0.2

    def test_validates_topological_order(self):
        bad = GroundTruthNetwork(n_genes=3, edges=[[0, 1]], strengths=[1.0])
        # Manually corrupt to a back edge.
        bad.edges = np.array([[2, 1]])
        bad.strengths = np.array([1.0])
        with pytest.raises(ValueError):
            simulate_expression(bad, 10)

    def test_invalid_params(self):
        truth = scale_free_grn(5, seed=0)
        with pytest.raises(ValueError):
            simulate_expression(truth, 0)
        with pytest.raises(ValueError):
            simulate_expression(truth, 10, noise_sd=-1)
        with pytest.raises(ValueError):
            simulate_expression(truth, 10, nonlinear_fraction=2.0)


class TestExpressionDataset:
    def test_subset_shapes(self):
        ds = toy(n_genes=20, m_samples=50)
        sub = ds.subset(n_genes=10, m_samples=25)
        assert sub.expression.shape == (10, 25)
        assert len(sub.genes) == 10

    def test_subset_truth_filtered(self):
        ds = toy(n_genes=20, m_samples=50)
        sub = ds.subset(n_genes=10)
        assert sub.truth is not None
        assert sub.truth.edges.size == 0 or sub.truth.edges.max() < 10

    def test_subset_out_of_range(self):
        ds = toy(n_genes=10, m_samples=20)
        with pytest.raises(ValueError):
            ds.subset(n_genes=11)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ExpressionDataset(np.zeros(5), ["a"])
        with pytest.raises(ValueError):
            ExpressionDataset(np.zeros((2, 5)), ["a"])


class TestDatasetPresets:
    def test_toy_fast_and_small(self):
        ds = toy()
        assert ds.n_genes == 12 and ds.m_samples == 120
        assert ds.truth is not None

    def test_yeast_subset_has_hubs(self):
        ds = yeast_subset(n_genes=100, m_samples=60, seed=0)
        out_deg = np.bincount(ds.truth.edges[:, 0], minlength=10)
        assert out_deg.max() >= 3

    def test_arabidopsis_shape_constant(self):
        assert ARABIDOPSIS_SHAPE.n_genes == 15575
        assert ARABIDOPSIS_SHAPE.m_samples == 3137
        assert ARABIDOPSIS_SHAPE.n_pairs == 15575 * 15574 // 2

    def test_arabidopsis_scale_reduced(self):
        ds = arabidopsis_scale(n_genes=60, m_samples=40, seed=0)
        assert ds.expression.shape == (60, 40)

    def test_microarray_dataset_complete(self):
        ds = microarray_dataset(n_genes=30, m_samples=40, dropout=0.05, seed=0)
        assert not np.isnan(ds.expression).any()
        assert ds.truth is not None
