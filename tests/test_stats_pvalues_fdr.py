"""Tests for repro.stats.pvalues and repro.stats.fdr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.fdr import benjamini_hochberg, bh_qvalues, bonferroni, holm_bonferroni
from repro.stats.pvalues import empirical_pvalue, empirical_pvalues


class TestEmpiricalPvalue:
    def test_add_one_formula(self):
        null = np.arange(10, dtype=float)  # 0..9
        # observed 9.5 beats all: p = 1/11
        assert empirical_pvalue(9.5, null) == pytest.approx(1 / 11)
        # observed -1 beats none: p = 11/11
        assert empirical_pvalue(-1.0, null) == pytest.approx(1.0)

    def test_never_zero(self, rng):
        null = rng.normal(size=100)
        assert empirical_pvalue(1e9, null) > 0.0

    def test_ties_count_as_exceedance(self):
        null = np.array([1.0, 1.0, 2.0])
        # null >= 1.0 is all three -> (1+3)/4
        assert empirical_pvalue(1.0, null) == pytest.approx(1.0)

    def test_empty_null_raises(self):
        with pytest.raises(ValueError):
            empirical_pvalue(0.0, np.array([]))


class TestEmpiricalPvalues:
    def test_matches_scalar(self, rng):
        null = rng.normal(size=200)
        obs = rng.normal(size=17)
        vec = empirical_pvalues(obs, null)
        ref = np.array([empirical_pvalue(o, null) for o in obs])
        assert np.allclose(vec, ref)

    def test_shape_preserved(self, rng):
        obs = rng.normal(size=(3, 4))
        assert empirical_pvalues(obs, rng.normal(size=50)).shape == (3, 4)

    def test_monotone_in_observed(self, rng):
        null = rng.normal(size=100)
        obs = np.sort(rng.normal(size=20))
        p = empirical_pvalues(obs, null)
        assert np.all(np.diff(p) <= 0)  # larger stat -> smaller p

    @given(q=st.integers(1, 500))
    @settings(max_examples=20, deadline=None)
    def test_bounds_property(self, q):
        rng = np.random.default_rng(q)
        null = rng.normal(size=q)
        p = empirical_pvalues(rng.normal(size=10), null)
        assert np.all(p >= 1.0 / (q + 1)) and np.all(p <= 1.0)


class TestBonferroni:
    def test_divides_alpha(self):
        p = np.array([0.004, 0.006, 0.2, 0.9, 0.5])
        rej = bonferroni(p, alpha=0.025)  # alpha/5 = 0.005
        assert rej.tolist() == [True, False, False, False, False]

    def test_empty(self):
        assert bonferroni(np.array([])).size == 0

    def test_rejects_bad_pvalues(self):
        with pytest.raises(ValueError):
            bonferroni(np.array([1.5]))
        with pytest.raises(ValueError):
            bonferroni(np.array([0.5]), alpha=0.0)

    def test_shape_preserved(self):
        assert bonferroni(np.full((2, 3), 0.5)).shape == (2, 3)


class TestHolm:
    def test_at_least_as_powerful_as_bonferroni(self, rng):
        p = rng.uniform(size=50) ** 3  # skew small
        assert holm_bonferroni(p).sum() >= bonferroni(p).sum()

    def test_step_down_stops(self):
        p = np.array([0.01, 0.04, 0.03])
        # sorted: .01 <= .05/3 ok; .03 > .05/2 -> stop; only the first rejected
        assert holm_bonferroni(p, alpha=0.05).tolist() == [True, False, False]

    def test_all_rejected_when_all_pass(self):
        p = np.array([0.01, 0.02, 0.04])
        # sorted: .01 <= .0167, .02 <= .025, .04 <= .05 -> all rejected
        assert holm_bonferroni(p, alpha=0.05).all()

    def test_none_rejected(self):
        assert not holm_bonferroni(np.array([0.9, 0.8]), alpha=0.05).any()

    def test_first_fails_blocks_all(self):
        p = np.array([0.5, 0.001 + 0.5])  # sorted first fails alpha/2
        assert not holm_bonferroni(p, alpha=0.05).any()


class TestBenjaminiHochberg:
    def test_known_example(self):
        # Classic worked example: t = 5.
        p = np.array([0.01, 0.02, 0.03, 0.5, 0.9])
        rej = benjamini_hochberg(p, alpha=0.05)
        # thresholds: .01, .02, .03, .04, .05 -> k = 3
        assert rej.tolist() == [True, True, True, False, False]

    def test_rejects_superset_of_bonferroni(self, rng):
        p = rng.uniform(size=100) ** 2
        bh = benjamini_hochberg(p)
        bf = bonferroni(p)
        assert np.all(bh | ~bf)  # every bonferroni rejection is a BH rejection

    def test_all_large_none_rejected(self):
        assert not benjamini_hochberg(np.array([0.5, 0.7, 0.99])).any()

    def test_fdr_control_simulation(self):
        # Under the global null, BH should rarely reject anything.
        rng = np.random.default_rng(0)
        false_rejections = 0
        for _ in range(50):
            p = rng.uniform(size=100)
            false_rejections += benjamini_hochberg(p, alpha=0.05).sum()
        assert false_rejections / 50 < 1.0  # far below uncorrected 5/run

    def test_shape_preserved(self):
        assert benjamini_hochberg(np.full((4, 4), 0.5)).shape == (4, 4)


class TestBhQvalues:
    def test_monotone_in_p(self, rng):
        p = np.sort(rng.uniform(size=30))
        q = bh_qvalues(p)
        assert np.all(np.diff(q) >= -1e-12)

    def test_bounded(self, rng):
        q = bh_qvalues(rng.uniform(size=40))
        assert np.all((q >= 0) & (q <= 1))

    def test_consistent_with_rejection(self, rng):
        p = rng.uniform(size=60) ** 2
        alpha = 0.1
        assert np.array_equal(bh_qvalues(p) <= alpha, benjamini_hochberg(p, alpha=alpha))

    def test_largest_p_q_equals_p(self):
        p = np.array([0.2, 0.5, 1.0])
        assert bh_qvalues(p)[2] == pytest.approx(1.0)
