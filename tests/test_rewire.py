"""Tests for repro.analysis.rewire: degree-preserving nulls."""

import numpy as np
import pytest

from repro.analysis.rewire import clustering_zscore, rewired_network
from repro.core.network import GeneNetwork


def triangle_rich_network(n=30, seed=0):
    """A network of many triangles: clustering far above its degree null."""
    rng = np.random.default_rng(seed)
    adj = np.zeros((n, n), dtype=bool)
    for s in range(0, n - 2, 3):
        for i in range(s, s + 3):
            for j in range(i + 1, s + 3):
                adj[i, j] = adj[j, i] = True
    # Sprinkle a few cross links so swapping has room.
    for _ in range(n // 3):
        i, j = rng.integers(0, n, 2)
        if i != j:
            adj[i, j] = adj[j, i] = True
    return GeneNetwork(adj, adj.astype(float), [f"g{i}" for i in range(n)])


class TestRewiredNetwork:
    def test_degrees_preserved(self):
        net = triangle_rich_network()
        rw = rewired_network(net, seed=1)
        assert np.array_equal(np.sort(rw.degrees()), np.sort(net.degrees()))
        assert rw.n_edges == net.n_edges

    def test_edges_actually_move(self):
        net = triangle_rich_network()
        rw = rewired_network(net, seed=2)
        assert not np.array_equal(rw.adjacency, net.adjacency)

    def test_gene_names_preserved(self):
        net = triangle_rich_network(12)
        assert rewired_network(net, seed=0).genes == net.genes

    def test_tiny_network_passthrough(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        net = GeneNetwork(adj, adj.astype(float), list("abc"))
        rw = rewired_network(net, seed=0)
        assert rw.n_edges == 1

    def test_reproducible(self):
        net = triangle_rich_network()
        a = rewired_network(net, seed=7)
        b = rewired_network(net, seed=7)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_validation(self):
        with pytest.raises(ValueError):
            rewired_network(triangle_rich_network(), swaps_per_edge=0)


class TestClusteringZscore:
    def test_triangle_network_significant(self):
        net = triangle_rich_network(30, seed=3)
        result = clustering_zscore(net, n_rewired=12, seed=0)
        assert result.observed > result.null_mean
        assert result.zscore > 2.0

    def test_custom_statistic(self):
        net = triangle_rich_network(15)
        result = clustering_zscore(net, n_rewired=4, seed=1,
                                   statistic=lambda n: float(n.n_edges))
        # Edge count is degree-determined: identical in every rewiring.
        assert result.null_std == 0.0
        assert np.isnan(result.zscore)

    def test_validation(self):
        with pytest.raises(ValueError):
            clustering_zscore(triangle_rich_network(), n_rewired=1)
