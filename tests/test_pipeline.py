"""Tests for repro.core.pipeline: the end-to-end reconstruction."""

import numpy as np
import pytest

from repro import TingeConfig, TingePipeline, reconstruct_network
from repro.parallel.engine import ThreadEngine


class TestTingeConfig:
    def test_defaults_valid(self):
        cfg = TingeConfig()
        assert cfg.bins == 10 and cfg.order == 3

    def test_pooled_requires_rank(self):
        with pytest.raises(ValueError):
            TingeConfig(transform="zscore", correction="bonferroni")

    def test_bh_allows_other_transforms(self):
        cfg = TingeConfig(transform="zscore", correction="bh")
        assert cfg.correction == "bh"

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TingeConfig(correction="fdr")
        with pytest.raises(ValueError):
            TingeConfig(alpha=0.0)
        with pytest.raises(ValueError):
            TingeConfig(dtype="float16")


class TestReconstructNetwork:
    def test_recovers_planted_edge(self, rng):
        x = rng.normal(size=300)
        data = np.vstack([x, x + 0.1 * rng.normal(size=300), rng.normal(size=(3, 300))])
        res = reconstruct_network(data, genes=list("abcde"),
                                  config=TingeConfig(n_permutations=25))
        assert ("a", "b") in res.network.edge_set()

    def test_independent_data_few_edges(self, rng):
        data = rng.normal(size=(10, 200))
        res = reconstruct_network(data, config=TingeConfig(n_permutations=40, alpha=0.01))
        # 45 pairs at Bonferroni-corrected alpha: expect ~0 edges.
        assert res.network.n_edges <= 2

    def test_timings_cover_all_phases(self, small_dataset):
        res = reconstruct_network(small_dataset.expression, small_dataset.genes,
                                  TingeConfig(n_permutations=10))
        assert set(res.timings) == {"preprocess", "weights", "null", "mi", "threshold"}
        assert all(v >= 0 for v in res.timings.values())
        assert res.total_seconds == pytest.approx(sum(res.timings.values()))

    def test_phase_fractions_sum_to_one(self, small_dataset):
        res = reconstruct_network(small_dataset.expression, small_dataset.genes,
                                  TingeConfig(n_permutations=10))
        assert sum(res.phase_fractions().values()) == pytest.approx(1.0)

    def test_reproducible_with_seed(self, small_dataset):
        cfg = TingeConfig(n_permutations=15, seed=11)
        a = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg)
        b = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg)
        assert np.array_equal(a.network.adjacency, b.network.adjacency)
        assert a.network.threshold == b.network.threshold

    def test_default_gene_names(self, rng):
        res = reconstruct_network(rng.normal(size=(4, 100)),
                                  config=TingeConfig(n_permutations=5))
        assert res.network.genes == [f"G{i:05d}" for i in range(4)]

    def test_bh_mode(self, rng):
        x = rng.normal(size=250)
        data = np.vstack([x, x + 0.1 * rng.normal(size=250), rng.normal(size=(4, 250))])
        # Null pool must resolve p below alpha/n_tests for BH's first rank:
        # 200 perms x 15 pairs = 3000 null values -> min p ~ 3.3e-4.
        cfg = TingeConfig(correction="bh", alpha=0.05, n_permutations=200, n_null_pairs=100)
        res = reconstruct_network(data, config=cfg)
        assert np.isnan(res.network.threshold)
        assert res.network.adjacency[0, 1]

    def test_float32_close_to_float64(self, small_dataset):
        a = reconstruct_network(small_dataset.expression, small_dataset.genes,
                                TingeConfig(n_permutations=10, dtype="float32"))
        b = reconstruct_network(small_dataset.expression, small_dataset.genes,
                                TingeConfig(n_permutations=10, dtype="float64"))
        assert np.allclose(a.mi, b.mi, atol=1e-4)

    def test_thread_engine_same_network(self, small_dataset):
        cfg = TingeConfig(n_permutations=10)
        a = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg)
        b = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg,
                                engine=ThreadEngine(n_workers=2))
        assert np.array_equal(a.network.adjacency, b.network.adjacency)

    def test_explicit_tile(self, small_dataset):
        cfg_a = TingeConfig(n_permutations=10, tile=4)
        cfg_b = TingeConfig(n_permutations=10, tile=16)
        a = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg_a)
        b = reconstruct_network(small_dataset.expression, small_dataset.genes, cfg_b)
        assert np.allclose(a.mi, b.mi)

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            reconstruct_network(rng.normal(size=(1, 50)))
        with pytest.raises(ValueError):
            reconstruct_network(rng.normal(size=(3, 4)))  # too few samples
        with pytest.raises(ValueError):
            reconstruct_network(rng.normal(size=(3, 50)), genes=["a"])
        with pytest.raises(ValueError):
            reconstruct_network(rng.normal(size=(3, 2, 2)))

    def test_network_weights_are_mi(self, small_dataset):
        res = reconstruct_network(small_dataset.expression, small_dataset.genes,
                                  TingeConfig(n_permutations=10))
        assert np.array_equal(res.network.weights, res.mi)


class TestTingePipeline:
    def test_run_twice_fresh_timings(self, small_dataset):
        pipe = TingePipeline(TingeConfig(n_permutations=5))
        pipe.run(small_dataset.expression)
        t1 = dict(pipe.timings)
        pipe.run(small_dataset.expression)
        assert set(t1) == set(pipe.timings)

    def test_null_pairs_capped_at_pair_count(self, rng):
        # 3 genes = 3 pairs but config asks for 200 null pairs: must not fail.
        data = rng.normal(size=(3, 100))
        res = reconstruct_network(data, config=TingeConfig(n_permutations=5, n_null_pairs=200))
        assert res.null.n_pairs_sampled == 3


class TestInputValidationExtras:
    def test_nan_input_rejected_with_guidance(self, rng):
        data = rng.normal(size=(4, 50))
        data[1, 3] = float("nan")
        with pytest.raises(ValueError, match="impute"):
            reconstruct_network(data)

    def test_inf_input_rejected(self, rng):
        data = rng.normal(size=(4, 50))
        data[0, 0] = float("inf")
        with pytest.raises(ValueError, match="NaN/inf"):
            reconstruct_network(data)

    def test_imputed_microarray_data_accepted(self):
        from repro.data import microarray_dataset

        ds = microarray_dataset(n_genes=10, m_samples=60, dropout=0.05, seed=2)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=5))
        assert res.network.n_genes == 10
