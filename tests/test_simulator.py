"""Tests for repro.machine.simulator: the paper's scaling shapes."""

import numpy as np
import pytest

from repro.machine.costmodel import KernelProfile
from repro.machine.simulator import MachineSimulator, simulate_workload, speedup_curve
from repro.machine.spec import XEON_E5_2670_DUAL, XEON_PHI_5110P
from repro.parallel.scheduler import DynamicScheduler, StaticScheduler


@pytest.fixture(scope="module")
def phi_sim():
    return MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=3137, n_permutations_fused=30))


class TestSimResult:
    def test_utilization_bounds(self, phi_sim):
        res = phi_sim.run(500, 240)
        assert 0.0 < res.utilization <= 1.0

    def test_busy_never_exceeds_makespan(self, phi_sim):
        res = phi_sim.run(500, 64)
        assert (res.busy <= res.makespan + 1e-12).all()


class TestScalingShapes:
    def test_more_threads_not_slower(self, phi_sim):
        # Monotone at the paper's measured occupancies (1..4 threads/core at
        # full width).  Intermediate counts like 180 can be *slightly* slower
        # than 120 through tile-granularity quantization (fewer, slower
        # threads round up better) — a real effect, excluded here on purpose.
        # A workload with tiles >> threads so the tail rounds off (~11k tiles).
        times = [phi_sim.run(1200, t).makespan for t in (1, 8, 60, 120, 240)]
        assert all(a >= b * 0.98 for a, b in zip(times, times[1:]))

    def test_knc_smt_doubling(self, phi_sim):
        # The paper's distinctive Phi curve: 2 threads/core ~2x 1 thread/core.
        t60 = phi_sim.run(600, 60).makespan
        t120 = phi_sim.run(600, 120).makespan
        assert t60 / t120 == pytest.approx(2.0, rel=0.05)

    def test_knc_no_gain_beyond_two(self, phi_sim):
        t120 = phi_sim.run(600, 120).makespan
        t240 = phi_sim.run(600, 240).makespan
        assert t120 / t240 == pytest.approx(1.0, rel=0.05)

    def test_near_linear_core_scaling(self, phi_sim):
        # Scaling across cores (1 thread each) should be near-linear.
        t1 = phi_sim.run(400, 1).makespan
        t30 = phi_sim.run(400, 30).makespan
        assert t1 / t30 == pytest.approx(30.0, rel=0.15)

    def test_xeon_ht_gain_small(self):
        sim = MachineSimulator(
            XEON_E5_2670_DUAL, KernelProfile(m_samples=3137, n_permutations_fused=30)
        )
        t16 = sim.run(400, 16).makespan
        t32 = sim.run(400, 32).makespan
        assert 1.0 < t16 / t32 < 1.3

    def test_phi_beats_xeon_at_full_occupancy(self, phi_sim):
        xeon = MachineSimulator(
            XEON_E5_2670_DUAL, KernelProfile(m_samples=3137, n_permutations_fused=30)
        )
        t_phi = phi_sim.run(800, 240).makespan
        t_xeon = xeon.run(800, 32).makespan
        assert 1.3 < t_xeon / t_phi < 3.5

    def test_speedup_curve_interface(self):
        curve = speedup_curve(
            XEON_PHI_5110P, 300, 512, [1, 4, 16, 64], n_permutations_fused=10
        )
        assert curve["threads"] == [1, 4, 16, 64]
        assert curve["speedup"][0] == pytest.approx(1.0)
        assert curve["speedup"][-1] > 10


class TestHeadlineCalibration:
    def test_phi_whole_genome_near_22_minutes(self, phi_sim):
        t = phi_sim.predict_seconds(15575, 240)
        assert 15 * 60 < t < 30 * 60

    def test_xeon_slower_than_phi(self, phi_sim):
        xeon = MachineSimulator(
            XEON_E5_2670_DUAL, KernelProfile(m_samples=3137, n_permutations_fused=30)
        )
        ratio = xeon.predict_seconds(15575, 32) / phi_sim.predict_seconds(15575, 240)
        assert 1.3 < ratio < 3.0

    def test_event_sim_matches_closed_form(self, phi_sim):
        event = phi_sim.run(1000, 240).makespan
        closed = phi_sim.predict_seconds(1000, 240)
        assert event == pytest.approx(closed, rel=0.15)


class TestSchedulingEffects:
    def test_dispatch_overhead_charged(self, phi_sim):
        res = phi_sim.run(300, 240, policy=DynamicScheduler(chunk=1))
        assert res.overhead.sum() > 0

    def test_static_no_overhead(self, phi_sim):
        res = phi_sim.run(300, 240, policy=StaticScheduler())
        assert res.overhead.sum() == 0

    def test_larger_chunks_less_overhead(self, phi_sim):
        fine = phi_sim.run(400, 240, policy=DynamicScheduler(chunk=1))
        coarse = phi_sim.run(400, 240, policy=DynamicScheduler(chunk=8))
        assert coarse.overhead.sum() < fine.overhead.sum()

    def test_unvectorized_much_slower(self):
        base = simulate_workload(XEON_PHI_5110P, 300, 512, n_threads=60)
        scalar = simulate_workload(XEON_PHI_5110P, 300, 512, n_threads=60, vectorized=False)
        assert scalar.makespan > 8 * base.makespan

    def test_untiled_memory_bound(self):
        base = simulate_workload(XEON_PHI_5110P, 300, 3137, n_threads=240,
                                 n_permutations_fused=0)
        untiled = simulate_workload(XEON_PHI_5110P, 300, 3137, n_threads=240,
                                    n_permutations_fused=0, tiled=False)
        assert untiled.makespan > base.makespan
