"""Tests for the work-stealing scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costmodel import KernelProfile
from repro.machine.simulator import MachineSimulator
from repro.machine.spec import XEON_PHI_5110P
from repro.parallel.scheduler import (
    DynamicScheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)


class TestWorkStealingSimulate:
    def test_work_conservation(self, rng):
        costs = rng.uniform(0.1, 2.0, size=60)
        a = WorkStealingScheduler().simulate(costs, 6)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())
        executed = sorted(i for items in a.worker_items for i in items)
        assert executed == list(range(60))

    def test_makespan_bounds(self, rng):
        costs = rng.uniform(0.1, 2.0, size=40)
        p = 5
        a = WorkStealingScheduler().simulate(costs, p)
        assert a.makespan >= max(costs.sum() / p, costs.max()) - 1e-12
        assert a.makespan <= costs.sum() + 1e-12

    def test_single_worker_serial(self, rng):
        costs = rng.uniform(0.1, 1.0, size=20)
        a = WorkStealingScheduler().simulate(costs, 1)
        assert a.makespan == pytest.approx(costs.sum())

    def test_beats_static_on_triangular_costs(self):
        costs = np.arange(200, 0, -1, dtype=float)
        p = 8
        ws = WorkStealingScheduler().simulate(costs, p)
        static = StaticScheduler().simulate(costs, p)
        assert ws.makespan < static.makespan * 0.75
        assert ws.imbalance < static.imbalance

    def test_competitive_with_dynamic(self, rng):
        costs = rng.uniform(0.5, 2.0, size=150)
        p = 10
        ws = WorkStealingScheduler().simulate(costs, p)
        dyn = DynamicScheduler(chunk=1).simulate(costs, p)
        assert ws.makespan <= dyn.makespan * 1.2

    def test_steal_cost_charged(self):
        # All work starts on worker 0's block: workers 1..3 must steal.
        costs = np.ones(16)
        free = WorkStealingScheduler(steal_cost=0.0).simulate(costs, 4)
        pricey = WorkStealingScheduler(steal_cost=0.5).simulate(costs, 4)
        assert pricey.makespan >= free.makespan

    def test_more_workers_than_items(self, rng):
        costs = rng.uniform(0.1, 1.0, size=3)
        a = WorkStealingScheduler().simulate(costs, 10)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())

    def test_empty_workload(self):
        a = WorkStealingScheduler().simulate(np.array([]), 4)
        assert a.makespan == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(steal_cost=-1.0)
        with pytest.raises(ValueError):
            WorkStealingScheduler().simulate(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            WorkStealingScheduler().simulate(np.array([1.0]), 0)

    def test_factory(self):
        p = make_scheduler("work-stealing", steal_cost=0.1)
        assert p.name == "work-stealing"
        assert p.steal_cost == 0.1

    @given(seed=st.integers(0, 100), n=st.integers(1, 100), p=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, seed, n, p):
        g = np.random.default_rng(seed)
        costs = g.uniform(0.01, 1.0, size=n)
        a = WorkStealingScheduler().simulate(costs, p)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())
        # Greedy bound: <= 2x the trivial lower bound.
        lb = max(costs.sum() / p, costs.max())
        assert a.makespan <= 2 * lb + 1e-9


class TestWorkStealingOnMachineModel:
    def test_simulator_accepts_work_stealing(self):
        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=512))
        res = sim.run(300, 60, policy=WorkStealingScheduler())
        assert res.makespan > 0
        assert res.busy.sum() > 0

    def test_close_to_dynamic_on_uniform_tiles(self):
        sim = MachineSimulator(XEON_PHI_5110P,
                               KernelProfile(m_samples=512, n_permutations_fused=10))
        ws = sim.run(400, 240, policy=WorkStealingScheduler()).makespan
        dyn = sim.run(400, 240, policy=DynamicScheduler(chunk=1)).makespan
        assert ws == pytest.approx(dyn, rel=0.2)
