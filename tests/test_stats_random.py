"""Tests for repro.stats.random: seeding, permutations, pair indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.random import (
    as_rng,
    derangement,
    flat_index_from_pair,
    pair_from_flat_index,
    permutation_matrix,
    sample_pairs,
    spawn_rngs,
)


class TestAsRng:
    def test_int_seed_reproducible(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9)
        b = as_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        g1, g2 = spawn_rngs(0, 2)
        assert g1.integers(0, 10**9) != g2.integers(0, 10**9)

    def test_reproducible(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert a == b

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestPermutationMatrix:
    def test_shape(self):
        p = permutation_matrix(5, 30, seed=0)
        assert p.shape == (5, 30)

    def test_rows_are_permutations(self):
        p = permutation_matrix(10, 25, seed=1)
        for row in p:
            assert sorted(row.tolist()) == list(range(25))

    def test_rows_differ(self):
        p = permutation_matrix(4, 100, seed=2)
        assert not np.array_equal(p[0], p[1])

    def test_reproducible(self):
        assert np.array_equal(permutation_matrix(3, 10, 5), permutation_matrix(3, 10, 5))

    def test_zero_permutations(self):
        assert permutation_matrix(0, 10, seed=0).shape == (0, 10)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            permutation_matrix(-1, 10)
        with pytest.raises(ValueError):
            permutation_matrix(1, 0)


class TestDerangement:
    def test_no_fixed_points(self):
        for seed in range(5):
            d = derangement(20, seed=seed)
            assert not np.any(d == np.arange(20))

    def test_is_permutation(self):
        d = derangement(15, seed=0)
        assert sorted(d.tolist()) == list(range(15))

    def test_n1_raises(self):
        with pytest.raises(ValueError):
            derangement(1)


class TestPairIndexing:
    def test_roundtrip_small(self):
        n = 7
        total = n * (n - 1) // 2
        pairs = pair_from_flat_index(np.arange(total), n)
        # All pairs distinct and i < j.
        assert len({tuple(p) for p in pairs.tolist()}) == total
        assert np.all(pairs[:, 0] < pairs[:, 1])
        back = flat_index_from_pair(pairs[:, 0], pairs[:, 1], n)
        assert np.array_equal(back, np.arange(total))

    def test_enumeration_order(self):
        pairs = pair_from_flat_index(np.arange(3), 3)
        assert pairs.tolist() == [[0, 1], [0, 2], [1, 2]]

    @given(n=st.integers(2, 200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n):
        total = n * (n - 1) // 2
        flat = np.linspace(0, total - 1, min(total, 50)).astype(np.int64)
        pairs = pair_from_flat_index(flat, n)
        assert np.all((0 <= pairs[:, 0]) & (pairs[:, 0] < pairs[:, 1]) & (pairs[:, 1] < n))
        assert np.array_equal(flat_index_from_pair(pairs[:, 0], pairs[:, 1], n), flat)

    def test_flat_index_rejects_bad_pairs(self):
        with pytest.raises(ValueError):
            flat_index_from_pair(np.array([2]), np.array([1]), 5)
        with pytest.raises(ValueError):
            flat_index_from_pair(np.array([0]), np.array([5]), 5)


class TestSamplePairs:
    def test_shape_and_validity(self):
        pairs = sample_pairs(20, 50, seed=0)
        assert pairs.shape == (50, 2)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert pairs.max() < 20

    def test_without_replacement_when_possible(self):
        pairs = sample_pairs(10, 45, seed=0)  # exactly all pairs
        assert len({tuple(p) for p in pairs.tolist()}) == 45

    def test_with_replacement_when_oversampled(self):
        pairs = sample_pairs(4, 20, seed=0)  # only 6 distinct pairs exist
        assert pairs.shape == (20, 2)

    def test_too_few_items(self):
        with pytest.raises(ValueError):
            sample_pairs(1, 5)
