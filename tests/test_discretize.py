"""Tests for repro.core.discretize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.discretize import bin_matrix, preprocess, rank_transform, zscore


class TestRankTransform:
    def test_spans_unit_interval(self, rng):
        r = rank_transform(rng.normal(size=50))
        assert r.min() == 0.0 and r.max() == 1.0

    def test_preserves_order(self, rng):
        x = rng.normal(size=30)
        r = rank_transform(x)
        assert np.array_equal(np.argsort(x), np.argsort(r))

    def test_identical_marginals_across_genes(self, rng):
        # The property the pooled null depends on: every (tie-free) gene has
        # the same sorted transformed values.
        data = rng.normal(size=(5, 40))
        r = rank_transform(data)
        ref = np.sort(r[0])
        for g in range(1, 5):
            assert np.allclose(np.sort(r[g]), ref)

    def test_ties_averaged(self):
        r = rank_transform(np.array([1.0, 1.0, 2.0]))
        assert r[0] == r[1]
        assert r[0] == pytest.approx(0.25)  # rank 1.5 -> (1.5-1)/2

    def test_monotone_invariance(self, rng):
        x = rng.normal(size=60)
        assert np.allclose(rank_transform(x), rank_transform(np.exp(x)))

    def test_2d_per_row(self, rng):
        data = rng.normal(size=(3, 20))
        r = rank_transform(data)
        for g in range(3):
            assert np.allclose(r[g], rank_transform(data[g]))

    def test_single_sample(self):
        assert rank_transform(np.array([7.0]))[0] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rank_transform(np.empty((2, 0)))

    @given(hnp.arrays(np.float64, st.integers(2, 80),
                      elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, x):
        r = rank_transform(x)
        assert np.all((r >= 0.0) & (r <= 1.0))


class TestZscore:
    def test_mean_zero_unit_var(self, rng):
        z = zscore(rng.normal(5, 3, size=(4, 100)))
        assert np.allclose(z.mean(axis=1), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=1, ddof=1), 1.0)

    def test_constant_gene_zeroed(self):
        z = zscore(np.array([[3.0, 3.0, 3.0], [1.0, 2.0, 3.0]]))
        assert np.all(z[0] == 0.0)
        assert not np.isnan(z).any()

    def test_1d(self, rng):
        z = zscore(rng.normal(size=50))
        assert z.shape == (50,)
        assert abs(z.mean()) < 1e-12


class TestBinMatrix:
    def test_shape_and_range(self, rng):
        b = bin_matrix(rng.normal(size=(5, 60)), 8)
        assert b.shape == (5, 60)
        assert b.min() >= 0 and b.max() < 8

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            bin_matrix(rng.normal(size=10), 4)


class TestPreprocess:
    def test_rank_default(self, rng):
        data = rng.normal(size=(3, 30))
        assert np.allclose(preprocess(data, "rank"), rank_transform(data))

    def test_zscore(self, rng):
        data = rng.normal(size=(3, 30))
        assert np.allclose(preprocess(data, "zscore"), zscore(data))

    def test_none_passthrough(self, rng):
        data = rng.normal(size=(3, 30))
        assert np.array_equal(preprocess(data, "none"), data)

    def test_unknown_raises(self, rng):
        with pytest.raises(ValueError):
            preprocess(rng.normal(size=(2, 5)), "log")
