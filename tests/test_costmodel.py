"""Tests for repro.machine.costmodel."""

import numpy as np
import pytest

from repro.core.tiling import Tile, pair_count
from repro.machine.costmodel import KernelProfile, TileCostModel, workload_flops
from repro.machine.spec import XEON_E5_2670_DUAL, XEON_PHI_5110P


@pytest.fixture
def profile():
    return KernelProfile(m_samples=3137, bins=10, order=3, n_permutations_fused=30)


class TestKernelProfile:
    def test_flops_per_evaluation(self, profile):
        # 2*m*k^2 + b^2*(8+2) = 2*3137*9 + 1000
        assert profile.flops_per_evaluation == pytest.approx(2 * 3137 * 9 + 1000)

    def test_fused_permutations_multiply(self, profile):
        base = KernelProfile(m_samples=3137)
        assert profile.flops_per_pair == pytest.approx(31 * base.flops_per_pair)

    def test_weight_bytes(self):
        p = KernelProfile(m_samples=100, order=3, itemsize=4)
        assert p.weight_bytes_per_gene() == 100 * (12 + 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfile(m_samples=0)
        with pytest.raises(ValueError):
            KernelProfile(m_samples=10, bins=2, order=3)
        with pytest.raises(ValueError):
            KernelProfile(m_samples=10, itemsize=2)
        with pytest.raises(ValueError):
            KernelProfile(m_samples=10, n_permutations_fused=-1)


class TestTileCostModel:
    def test_flops_scale_with_tile_area(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        small = model.tile_flops(Tile(0, 8, 8, 16))
        big = model.tile_flops(Tile(0, 16, 16, 32))
        assert big == pytest.approx(4 * small)

    def test_tiled_bytes_much_smaller(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        t = Tile(0, 32, 32, 64)
        tiled = model.tile_bytes(t)
        untiled = model.with_profile(tiled=False).tile_bytes(t)
        assert untiled > 10 * tiled

    def test_scalar_kernel_slower(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        t = Tile(0, 16, 16, 32)
        vec = model.tile_seconds(t)
        scalar = model.with_profile(vectorized=False).tile_seconds(t)
        assert scalar > 4 * vec  # bounded by lanes or the memory roof

    def test_smt_occupancy_affects_time(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        t = Tile(0, 16, 16, 32)
        t1 = model.tile_seconds(t, active_threads_on_core=1)
        t2 = model.tile_seconds(t, active_threads_on_core=2)
        # Two threads sharing a KNC core: each gets the same rate as alone
        # (0.5 issue alone, 1.0/2 shared) -> equal per-tile time.
        assert t2 == pytest.approx(t1)
        t4 = model.tile_seconds(t, active_threads_on_core=4)
        assert t4 > t2  # four ways split a saturated core

    def test_bandwidth_sharing_can_dominate(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        t = Tile(0, 8, 8, 16)
        alone = model.tile_seconds(t, threads_sharing_bw=1)
        crowded = model.tile_seconds(t, threads_sharing_bw=100000)
        assert crowded > alone

    def test_invalid_bw_share(self, profile):
        model = TileCostModel(XEON_PHI_5110P, profile)
        with pytest.raises(ValueError):
            model.tile_seconds(Tile(0, 2, 2, 4), threads_sharing_bw=0)

    def test_vector_form_matches_scalar_form(self, profile):
        model = TileCostModel(XEON_E5_2670_DUAL, profile)
        tiles = [Tile(0, 8, 8, 16), Tile(0, 8, 16, 24), Tile(8, 16, 8, 16)]
        vec = model.tile_seconds_vector(tiles, 2, 32)
        ref = [model.tile_seconds(t, 2, 32) for t in tiles]
        assert np.allclose(vec, ref)


class TestWorkloadFlops:
    def test_counts_valid_pairs_only(self, profile):
        assert workload_flops(100, profile) == pytest.approx(
            pair_count(100) * profile.flops_per_pair
        )

    def test_quadratic_growth(self, profile):
        a = workload_flops(1000, profile)
        b = workload_flops(2000, profile)
        assert b / a == pytest.approx(pair_count(2000) / pair_count(1000))
