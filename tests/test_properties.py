"""Cross-module property-based tests (hypothesis).

Information-theoretic and structural invariants that must hold for *any*
input, exercised with generated data: these are the properties the whole
reconstruction's correctness rests on.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.entropy import marginal_entropies
from repro.core.mi import mi_bspline, mi_tile
from repro.core.mi_matrix import mi_matrix
from repro.core.permutation import permuted_weights
from repro.core.threshold import threshold_adjacency, top_k_adjacency
from repro.parallel.scheduler import DynamicScheduler, StaticScheduler


def gene_matrix(seed, n, m):
    return np.random.default_rng(seed).normal(size=(n, m))


class TestInformationInequalities:
    @given(seed=st.integers(0, 300), m=st.integers(25, 120))
    @settings(max_examples=40, deadline=None)
    def test_mi_bounded_by_marginal_entropies(self, seed, m):
        """I(X;Y) <= min(H(X), H(Y)) for the plug-in estimator."""
        data = gene_matrix(seed, 2, m)
        w = weight_tensor(data)
        h = marginal_entropies(w)
        mi = mi_tile(w[:1], w[1:])[0, 0]
        assert mi <= min(h) + 1e-9

    @given(seed=st.integers(0, 300), m=st.integers(25, 120))
    @settings(max_examples=40, deadline=None)
    def test_self_mi_is_maximal_over_row(self, seed, m):
        """No gene shares more information with X than X itself does."""
        data = gene_matrix(seed, 4, m)
        w = weight_tensor(data)
        full = mi_tile(w, w)
        for i in range(4):
            assert full[i, i] == pytest.approx(full[i].max(), abs=1e-9)

    @given(seed=st.integers(0, 200), m=st.integers(30, 100), bins=st.integers(4, 14))
    @settings(max_examples=30, deadline=None)
    def test_mi_nonnegative_any_bins(self, seed, m, bins):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=m)
        y = rng.normal(size=m)
        order = min(3, bins)
        assert mi_bspline(x, y, bins=bins, order=order) >= 0.0

    @given(seed=st.integers(0, 200), m=st.integers(30, 100))
    @settings(max_examples=30, deadline=None)
    def test_rank_transform_does_not_create_dependence(self, seed, m):
        """Rank transforming preserves the *estimate* up to the estimator's
        binning granularity — in particular, MI before/after rank on the
        same data correlates in ordering."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=m)
        y_dep = x + 0.3 * rng.normal(size=m)
        y_ind = rng.normal(size=m)
        rx, rdep, rind = rank_transform(np.vstack([x, y_dep, y_ind]))
        assert mi_bspline(rx, rdep) > mi_bspline(rx, rind) - 1e-9


class TestPermutationInvariants:
    @given(seed=st.integers(0, 200), m=st.integers(20, 80))
    @settings(max_examples=30, deadline=None)
    def test_joint_permutation_preserves_mi(self, seed, m):
        """Permuting BOTH genes by the same permutation is a relabeling of
        samples: MI must be exactly invariant."""
        rng = np.random.default_rng(seed)
        data = gene_matrix(seed, 2, m)
        w = weight_tensor(data)
        perm = rng.permutation(m)
        a = mi_tile(w[:1], w[1:])[0, 0]
        wp = permuted_weights(w, perm)
        b = mi_tile(wp[:1], wp[1:])[0, 0]
        assert a == pytest.approx(b, rel=1e-10, abs=1e-12)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_single_permutation_destroys_dependence(self, seed):
        """Permuting ONE strongly coupled gene must slash its MI."""
        rng = np.random.default_rng(seed)
        m = 200
        x = rng.normal(size=m)
        data = np.vstack([x, x + 0.1 * rng.normal(size=m)])
        w = weight_tensor(rank_transform(data))
        original = mi_tile(w[:1], w[1:])[0, 0]
        perm = rng.permutation(m)
        assume(np.count_nonzero(perm == np.arange(m)) < m // 4)
        permuted = mi_tile(w[:1][:, perm], w[1:])[0, 0]
        assert permuted < original / 3


class TestMatrixStructure:
    @given(seed=st.integers(0, 100), n=st.integers(3, 12),
           m=st.integers(25, 70), tile=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_mi_matrix_symmetric_psd_like(self, seed, n, m, tile):
        w = weight_tensor(gene_matrix(seed, n, m))
        res = mi_matrix(w, tile=tile)
        assert np.array_equal(res.mi, res.mi.T)
        assert (res.mi >= 0).all()
        assert np.all(np.diag(res.mi) == 0)

    @given(seed=st.integers(0, 100), n=st.integers(3, 10), k=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_top_k_exact_count(self, seed, n, k):
        rng = np.random.default_rng(seed)
        s = rng.uniform(size=(n, n))
        s = (s + s.T) / 2
        np.fill_diagonal(s, 0)
        adj = top_k_adjacency(s, k)
        assert adj.sum() == 2 * min(k, n * (n - 1) // 2)

    @given(seed=st.integers(0, 100), thr=st.floats(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotone(self, seed, thr):
        """Raising the threshold never adds edges."""
        rng = np.random.default_rng(seed)
        s = rng.uniform(size=(8, 8))
        s = (s + s.T) / 2
        np.fill_diagonal(s, 0)
        low = threshold_adjacency(s, thr)
        high = threshold_adjacency(s, thr + 0.1)
        assert np.all(low | ~high)


class TestSchedulerProperties:
    @given(seed=st.integers(0, 200), n=st.integers(1, 80), p=st.integers(1, 24),
           chunk=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_dynamic_work_conservation_property(self, seed, n, p, chunk):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.01, 1.0, size=n)
        a = DynamicScheduler(chunk=chunk).simulate(costs, p)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())
        assert a.makespan >= costs.max() - 1e-12
        assert a.makespan <= costs.sum() + 1e-12

    @given(seed=st.integers(0, 200), n=st.integers(1, 80), p=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_static_work_conservation_property(self, seed, n, p):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.01, 1.0, size=n)
        a = StaticScheduler().simulate(costs, p)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())
