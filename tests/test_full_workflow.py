"""One larger end-to-end workflow test: the whole public surface in concert.

A 300-gene reconstruction driven the way a real analysis would be: threaded
engine, DPI pruning, module detection, enrichment against the generating
regulons, topology significance against rewired nulls, provenance record,
and serialization round-trips.  Slower than the unit tests (~10 s) but the
single best regression net the repository has.
"""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.analysis import (
    clustering_zscore,
    compare_networks,
    enrich_modules,
    modularity_modules,
    module_purity,
    regulon_annotations,
    score_network,
    summarize,
)
from repro.baselines import dpi_prune, pearson_matrix
from repro.core import GeneNetwork
from repro.core.provenance import run_record, save_run_record, load_run_record, verify_run_record
from repro.data import save_dataset, load_dataset, yeast_subset
from repro.parallel import ThreadEngine

N_GENES = 300
M_SAMPLES = 400


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("workflow")
    ds = yeast_subset(n_genes=N_GENES, m_samples=M_SAMPLES, seed=100)
    save_dataset(ds, tmp / "dataset.npz")
    result = reconstruct_network(
        ds.expression, ds.genes,
        TingeConfig(n_permutations=25, alpha=0.01, dtype="float32", seed=1),
        engine=ThreadEngine(n_workers=2),
    )
    pruned = GeneNetwork(
        dpi_prune(result.mi, result.network.adjacency, tolerance=0.1),
        result.mi, ds.genes,
    )
    return tmp, ds, result, pruned


class TestFullWorkflow:
    def test_statistical_sanity(self, workflow):
        _, ds, result, pruned = workflow
        # Significant structure found, far sparser than the pair universe.
        assert 0 < result.network.n_edges < N_GENES * (N_GENES - 1) // 4
        # Pruning only removes edges.
        assert pruned.n_edges <= result.network.n_edges

    def test_accuracy_beats_chance_and_tracks_pearson(self, workflow):
        _, ds, result, pruned = workflow
        c = score_network(pruned, ds.truth)
        chance = ds.truth.n_edges / (N_GENES * (N_GENES - 1) / 2)
        assert c.precision > 3 * chance
        assert c.recall > 0.2

    def test_topology_is_nonrandom(self, workflow):
        _, ds, _result, pruned = workflow
        s = summarize(pruned)
        assert s.largest_component > N_GENES // 2
        z = clustering_zscore(pruned, n_rewired=6, seed=0)
        assert z.observed > z.null_mean  # clustered beyond its degrees

    def test_modules_enrich_true_regulons(self, workflow):
        _, ds, _result, pruned = workflow
        modules = modularity_modules(pruned, min_size=4)
        assert modules
        assert module_purity(modules, ds.truth) > 0.05
        hits = enrich_modules(modules, regulon_annotations(ds.truth, min_size=4),
                              n_genes=N_GENES, alpha=0.05)
        assert hits and hits[0].pvalue < 1e-3

    def test_round_trips_and_provenance(self, workflow):
        tmp, ds, result, pruned = workflow
        # Dataset round-trip.
        back = load_dataset(tmp / "dataset.npz")
        assert np.array_equal(back.expression, ds.expression)
        # Network round-trip.
        pruned.save(tmp / "network.npz")
        loaded = GeneNetwork.load(tmp / "network.npz")
        assert compare_networks(loaded, pruned).jaccard == 1.0
        # Provenance record verifies against the original inputs.
        record = run_record(result, ds.expression)
        save_run_record(record, tmp / "run.json")
        assert verify_run_record(load_run_record(tmp / "run.json"),
                                 ds.expression, result) == []

    def test_mi_beats_pearson_ranking(self, workflow):
        from repro.analysis import aupr

        _, ds, result, _pruned = workflow
        assert aupr(result.mi, ds.truth) > 0.9 * aupr(
            np.abs(pearson_matrix(ds.expression)), ds.truth
        )
