"""Property-based tests (hypothesis) for NetworkUpdater streaming updates.

Two properties pin the streaming contract over *random* histories:

* any interleaving of add_gene / remove_gene / add_samples whose last
  step is a sample increment yields a network bit-identical to a
  from-scratch pipeline run on the final dataset (same threshold, same
  adjacency, same edge weights).  The trailing increment matters: gene
  ops deliberately re-tighten from the *stored* null (their documented
  O(n) contract), while ``add_samples`` rebuilds the null from the grown
  tensor — which is what pins the whole state to scratch; and
* the dirty-tile screen is conservative — it never skips a pair whose
  recomputed MI lands at-or-above the new threshold, for any batch size
  and any safety margin the strategy throws at it.

Sizes are kept deliberately small (n <= 14, m <= 60) so the suite stays
in tier-1 time; the deterministic fixtures in
``test_incremental_streaming.py`` cover the realistic-scale cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import NetworkUpdater
from repro.core.mi_matrix import mi_matrix
from repro.core.pipeline import TingeConfig, reconstruct_network

CONFIG = TingeConfig(n_permutations=5, n_null_pairs=20, alpha=0.05,
                     seed=1, tile=4)


def _make_data(seed: int, n: int, m: int) -> np.ndarray:
    """Mostly-null data with a few coupled pairs, so edges exist to churn."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, m))
    for k in range(max(n // 5, 1)):
        data[2 * k + 1] = data[2 * k] + 0.3 * rng.normal(size=m)
    return data


def _identical(updater, reference) -> None:
    net, ref = updater.network, reference.network
    assert net.threshold == ref.threshold
    assert np.array_equal(net.adjacency, ref.adjacency)
    assert np.array_equal(net.weights[ref.adjacency],
                          ref.weights[ref.adjacency])


class TestInterleavingsMatchScratch:
    @given(
        seed=st.integers(0, 10_000),
        ops=st.lists(
            st.sampled_from(["add_gene", "remove_gene", "add_samples"]),
            min_size=1, max_size=5),
        dm=st.integers(1, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_history_bit_identical(self, seed, ops, dm):
        n, m = 10, 40
        data = _make_data(seed, n, m)
        res = reconstruct_network(data, config=CONFIG)
        u = NetworkUpdater.from_result(res, data)
        rng = np.random.default_rng(seed + 1)
        counter = 0

        # The trailing increment is what re-anchors every piece of state
        # (null included) to the grown dataset — see module docstring.
        for op in ops + ["add_samples"]:
            if op == "add_gene" and u.n_genes < 14:
                counter += 1
                u.add_gene(f"extra{counter}", rng.normal(size=u.n_samples))
            elif op == "remove_gene" and u.n_genes > 4:
                u.remove_gene(u._genes[int(rng.integers(u.n_genes))])
            elif op == "add_samples":
                assert u.add_samples(rng.normal(size=(u.n_genes, dm))) is not None

        # The updater's retained raw data IS the final dataset (pinned
        # below against an independently tracked copy in the streaming
        # unit tests); from-scratch on it must agree bit-for-bit.
        ref = reconstruct_network(u._data, config=CONFIG, genes=list(u._genes))
        _identical(u, ref)

    @given(seed=st.integers(0, 10_000), dm=st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_increment_matches_scratch_on_grown(self, seed, dm):
        n, m = 12, 50
        full = _make_data(seed, n, m + dm)
        data, new = full[:, :m], full[:, m:]
        res = reconstruct_network(data, config=CONFIG)
        u = NetworkUpdater.from_result(res, data)
        assert u.add_samples(new) is not None
        _identical(u, reconstruct_network(full, config=CONFIG))


class TestScreenNeverSkips:
    @given(
        seed=st.integers(0, 10_000),
        dm=st.integers(1, 4),
        safety=st.floats(1.0, 8.0),
        n_probes=st.integers(8, 64),
    )
    @settings(max_examples=10, deadline=None)
    def test_no_crossing_pair_is_skipped(self, seed, dm, safety, n_probes):
        """Audit against the full matrix: every pair whose true grown MI
        is above the new threshold must have been recomputed (bitwise
        equal), whatever calibration the screen ran with."""
        n, m = 12, 50
        full = _make_data(seed, n, m + dm)
        data, new = full[:, :m], full[:, m:]
        res = reconstruct_network(data, config=CONFIG)
        u = NetworkUpdater.from_result(res, data)
        delta = u.add_samples(new, n_probes=n_probes, safety=safety)
        assert delta is not None

        res_full = reconstruct_network(full, config=CONFIG)
        mi_full, thr = res_full.mi, res_full.network.threshold
        above = (mi_full > thr) | (u.mi > thr)
        assert np.array_equal(u.mi[above], mi_full[above])
        # And the stale remainder is provably unable to flip an edge:
        stale = u.mi != mi_full
        assert not (mi_full[stale] > thr).any()
        assert not (u.mi[stale] > thr).any()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_screened_mi_entries_match_where_recomputed(self, seed):
        """Recomputed entries are bitwise the full kernel's output (the
        replay runs the same compute_tile on the same grown tensor)."""
        n, m, dm = 10, 40, 2
        full = _make_data(seed, n, m + dm)
        data, new = full[:, :m], full[:, m:]
        res = reconstruct_network(data, config=CONFIG)
        u = NetworkUpdater.from_result(res, data)
        mi_before = u.mi
        assert u.add_samples(new) is not None
        changed = u.mi != mi_before
        from repro.core.bspline import weight_tensor
        from repro.core.discretize import rank_transform

        mi_full = mi_matrix(weight_tensor(rank_transform(full))).mi
        assert np.array_equal(u.mi[changed], mi_full[changed])
