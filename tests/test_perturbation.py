"""Tests for repro.data.perturbation."""

import numpy as np
import pytest

from repro.analysis import aupr
from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.mi_matrix import mi_matrix
from repro.data.grn import GroundTruthNetwork, scale_free_grn
from repro.data.perturbation import simulate_perturbations


@pytest.fixture(scope="module")
def truth():
    return scale_free_grn(30, n_regulators=4, mean_in_degree=2.0, seed=2)


class TestSimulatePerturbations:
    def test_sample_layout(self, truth):
        panel = simulate_perturbations(truth, m_observational=50,
                                       regulators=[0, 1], replicates=4, seed=0)
        assert panel.dataset.expression.shape == (30, 50 + 2 * 4)
        assert panel.n_observational == 50
        assert panel.n_perturbations == 8
        assert panel.samples_for(0).size == 4
        assert panel.samples_for(2).size == 0

    def test_knockout_clamps_low(self, truth):
        panel = simulate_perturbations(truth, 20, regulators=[0],
                                       replicates=5, mode="knockout", seed=1)
        ko = panel.samples_for(0)
        assert np.all(panel.dataset.expression[0, ko] == -2.5)
        assert np.all(panel.clamp_level[ko] == -2.5)

    def test_overexpression_clamps_high(self, truth):
        panel = simulate_perturbations(truth, 20, regulators=[1],
                                       replicates=5, mode="overexpression", seed=1)
        oe = panel.samples_for(1)
        assert np.all(panel.dataset.expression[1, oe] == 2.5)

    def test_default_regulators_have_outdegree(self, truth):
        panel = simulate_perturbations(truth, 10, replicates=1, seed=0)
        regs = set(panel.perturbed_gene[panel.perturbed_gene >= 0].tolist())
        out_genes = set(int(r) for r in truth.edges[:, 0])
        assert regs == out_genes

    def test_knockout_shifts_targets(self, truth):
        """Clamping a regulator must change its direct targets'
        distribution relative to observational samples."""
        # Pick the regulator with the most targets.
        reg = int(np.bincount(truth.edges[:, 0], minlength=4).argmax())
        targets = truth.edges[truth.edges[:, 0] == reg][:, 1]
        panel = simulate_perturbations(truth, 200, regulators=[reg],
                                       replicates=50, noise_sd=0.1, seed=3)
        obs = panel.dataset.expression[:, :200]
        ko = panel.dataset.expression[:, panel.samples_for(reg)]
        shifts = [abs(ko[t].mean() - obs[t].mean()) for t in targets]
        assert max(shifts) > 0.5

    def test_perturbations_help_reconstruction(self, truth):
        """MI ranking with perturbation data must be at least as good as
        observational-only at equal sample count."""
        panel = simulate_perturbations(truth, 100, replicates=10,
                                       noise_sd=0.3, seed=4)
        full = panel.dataset.expression
        obs_only = full[:, :100]

        def score(data):
            w = weight_tensor(rank_transform(data))
            return aupr(mi_matrix(w).mi, truth)

        assert score(full) > 0.7 * score(obs_only)  # never catastrophic
        assert score(full) > 0.1  # well above the ~0.06 chance level

    def test_reproducible(self, truth):
        a = simulate_perturbations(truth, 30, replicates=2, seed=9)
        b = simulate_perturbations(truth, 30, replicates=2, seed=9)
        assert np.array_equal(a.dataset.expression, b.dataset.expression)

    def test_validation(self, truth):
        with pytest.raises(ValueError):
            simulate_perturbations(truth, 0)
        with pytest.raises(ValueError):
            simulate_perturbations(truth, 10, replicates=0)
        with pytest.raises(ValueError):
            simulate_perturbations(truth, 10, mode="sirna")
        with pytest.raises(ValueError):
            simulate_perturbations(truth, 10, regulators=[99])

    def test_no_edges_network(self):
        lonely = GroundTruthNetwork(n_genes=3, edges=np.empty((0, 2), dtype=int),
                                    strengths=np.empty(0))
        panel = simulate_perturbations(lonely, 10, seed=0)
        assert panel.n_perturbations == 0
        assert panel.dataset.expression.shape == (3, 10)


class TestNormalizationGuard:
    def test_clamped_blocks_stay_bounded(self):
        """Regression: a clamped regulator once produced ~1e16 values when
        the per-block signal normalization divided by a ~1e-16 std."""
        truth = scale_free_grn(40, n_regulators=4, seed=13)
        panel = simulate_perturbations(truth, m_observational=50,
                                       replicates=15, noise_sd=0.25, seed=14)
        assert np.abs(panel.dataset.expression).max() < 100.0
