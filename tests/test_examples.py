"""Every example script must run to completion (deliverable guard).

Each example is executed as a subprocess with reduced problem sizes where
it accepts them, and its stdout is checked for the landmark line that
proves it got past its analysis — not just past the imports.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", [], "accuracy vs ground truth"),
    ("whole_genome_arabidopsis.py", ["--genes", "300"], "modelled whole-genome"),
    ("method_comparison.py", ["--genes", "60", "--samples", "250"],
     "method comparison"),
    ("phi_vs_xeon_scaling.py", ["--genes", "800"], "thread scaling"),
    ("module_discovery.py", ["--genes", "50"], "regulatory coherence"),
    ("design_space.py", ["--genes", "600"], "fastest configurations"),
    ("causal_orientation.py", ["--genes", "25"], "directional accuracy"),
]


@pytest.mark.parametrize("script,args,landmark", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, landmark):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert landmark in proc.stdout


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {c[0] for c in CASES}
