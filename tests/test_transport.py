"""Tests for repro.cluster.transport — framing, partial reads, metering."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster.comm import CommMeter
from repro.cluster.transport import (
    BYE,
    Channel,
    FrameError,
    HEADER_SIZE,
    MAGIC,
    MSG,
    PING,
    connect,
    recv_exactly,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        wire = send_frame(a, MSG, b"hello")
        ftype, payload, n = recv_frame(b)
        assert (ftype, payload) == (MSG, b"hello")
        assert n == wire == HEADER_SIZE + 5

    def test_empty_payload(self, pair):
        a, b = pair
        send_frame(a, PING)
        ftype, payload, n = recv_frame(b)
        assert (ftype, payload, n) == (PING, b"", HEADER_SIZE)

    def test_partial_reads_reassembled(self, pair):
        """TCP may deliver any byte-split; recv_exactly must loop."""
        a, b = pair
        header = struct.Struct(">4sBQ").pack(MAGIC, MSG, 6)
        blob = header + b"abcdef"

        def dribble():
            for i in range(len(blob)):  # one byte per send
                a.sendall(blob[i : i + 1])

        t = threading.Thread(target=dribble)
        t.start()
        ftype, payload, _ = recv_frame(b)
        t.join()
        assert (ftype, payload) == (MSG, b"abcdef")

    def test_eof_mid_read_raises(self, pair):
        a, b = pair
        a.sendall(b"RP")  # half a header, then hang up
        a.close()
        with pytest.raises(ConnectionError, match="mid-read"):
            recv_frame(b)

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        a.sendall(struct.Struct(">4sBQ").pack(b"EVIL", MSG, 0))
        with pytest.raises(FrameError, match="magic"):
            recv_frame(b)

    def test_unknown_type_rejected(self, pair):
        a, b = pair
        a.sendall(struct.Struct(">4sBQ").pack(MAGIC, 99, 0))
        with pytest.raises(FrameError, match="unknown frame type"):
            recv_frame(b)

    def test_oversized_frame_rejected_before_payload(self, pair):
        """A hostile length field must be rejected from the header alone —
        no payload bytes are read (none were even sent)."""
        a, b = pair
        a.sendall(struct.Struct(">4sBQ").pack(MAGIC, MSG, 1 << 40))
        with pytest.raises(FrameError, match="max_frame"):
            recv_frame(b, max_frame=1024)

    def test_recv_exactly_zero(self, pair):
        _, b = pair
        assert recv_exactly(b, 0) == b""


class TestChannel:
    def test_object_roundtrip_with_numpy(self, pair):
        a, b = pair
        meter = CommMeter()
        ca = Channel(a, peer="right", meter=meter)
        cb = Channel(b, peer="left")
        msg = {"type": "result", "value": np.arange(7, dtype=np.float32)}
        sent = ca.send(msg)
        got = cb.recv()
        assert got["type"] == "result"
        assert np.array_equal(got["value"], msg["value"])
        assert got["value"].dtype == np.float32
        assert meter.sent_by_peer["right"] == float(sent)

    def test_ping_answered_transparently(self, pair):
        a, b = pair
        ca, cb = Channel(a, peer="b"), Channel(b, peer="a")
        ca.ping()
        ca.send("after-ping")
        # cb.recv answers the PING inline and returns only the data frame.
        assert cb.recv() == "after-ping"
        # The PONG is sitting in ca's stream, skipped before the next MSG.
        cb.send("reply")
        assert ca.recv() == "reply"
        assert cb.meter.calls.get("pong") == 1

    def test_bye_returns_none(self, pair):
        a, b = pair
        ca, cb = Channel(a, peer="b"), Channel(b, peer="a")
        ca.bye()
        assert cb.recv() is None

    def test_send_respects_max_frame(self, pair):
        a, _ = pair
        ca = Channel(a, peer="b", max_frame=64)
        with pytest.raises(FrameError, match="refusing to send"):
            ca.send(np.zeros(1024))

    def test_recv_metering_per_peer(self, pair):
        a, b = pair
        meter = CommMeter()
        ca = Channel(a, peer="w0")
        cb = Channel(b, peer="w9", meter=meter)
        ca.send([1, 2, 3])
        cb.recv()
        counters = meter.peer_counters()
        assert counters["comm.bytes_recv{peer=w9}"] > 0
        # Received bytes never inflate wire volume (sender owns that).
        assert meter.volume_bytes == 0.0


class TestConnect:
    def test_dial_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        ch = connect(host, port, peer="srv")
        server_sock, _ = listener.accept()
        cs = Channel(server_sock, peer="cli")
        ch.send("hi")
        assert cs.recv() == "hi"
        ch.close()
        cs.close()
        listener.close()
