"""Tests for repro.machine.trace."""

import numpy as np
import pytest

from repro.machine.costmodel import KernelProfile
from repro.machine.simulator import MachineSimulator
from repro.machine.spec import XEON_PHI_5110P
from repro.machine.trace import (
    active_threads_timeline,
    render_gantt,
    tail_start,
    trace_utilization,
)
from repro.parallel.scheduler import StaticScheduler


@pytest.fixture(scope="module")
def traced_result():
    sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=512))
    return sim.run(200, 8, record_trace=True)


class TestTraceRecording:
    def test_trace_present_when_requested(self, traced_result):
        assert traced_result.trace is not None
        assert len(traced_result.trace) > 0

    def test_trace_absent_by_default(self):
        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=512))
        assert sim.run(100, 4).trace is None

    def test_intervals_within_makespan(self, traced_result):
        for thread, start, end, n in traced_result.trace:
            assert 0 <= thread < traced_result.n_threads
            assert 0.0 <= start <= end <= traced_result.makespan + 1e-12
            assert n >= 1

    def test_intervals_cover_all_tiles(self, traced_result):
        total = sum(n for _w, _s, _e, n in traced_result.trace)
        assert total == traced_result.n_tiles

    def test_per_thread_intervals_disjoint(self, traced_result):
        by_thread = {}
        for w, s, e, _n in traced_result.trace:
            by_thread.setdefault(w, []).append((s, e))
        for intervals in by_thread.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12

    def test_static_policy_traced(self):
        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=512))
        res = sim.run(100, 4, policy=StaticScheduler(), record_trace=True)
        assert res.trace is not None
        assert all(start == 0.0 for _w, start, _e, _n in res.trace)


class TestRenderGantt:
    def test_shape_and_markers(self, traced_result):
        out = render_gantt(traced_result, width=40, max_threads=4)
        lines = out.splitlines()
        assert len(lines) == 5  # header + 4 threads
        assert "#" in out
        for line in lines[1:]:
            assert line.startswith("t") and line.endswith("|")

    def test_requires_trace(self):
        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=512))
        res = sim.run(50, 2)
        with pytest.raises(ValueError, match="record_trace"):
            render_gantt(res)

    def test_width_validation(self, traced_result):
        with pytest.raises(ValueError):
            render_gantt(traced_result, width=5)


class TestTimeline:
    def test_occupancy_bounds(self, traced_result):
        times, active = active_threads_timeline(traced_result, bins=30)
        assert times.shape == active.shape == (30,)
        assert (active >= -1e-9).all()
        assert (active <= traced_result.n_threads + 1e-9).all()

    def test_area_matches_busy_time(self, traced_result):
        times, active = active_threads_timeline(traced_result, bins=400)
        dt = traced_result.makespan / 400
        area = active.sum() * dt
        assert area == pytest.approx(traced_result.busy.sum(), rel=0.02)

    def test_full_occupancy_early(self, traced_result):
        _times, active = active_threads_timeline(traced_result, bins=50)
        assert active[1] == pytest.approx(traced_result.n_threads, rel=0.1)

    def test_bins_validation(self, traced_result):
        with pytest.raises(ValueError):
            active_threads_timeline(traced_result, bins=0)


class TestTailAndUtilization:
    def test_tail_start_in_range(self, traced_result):
        t = tail_start(traced_result)
        assert 0.0 <= t <= traced_result.makespan

    def test_balanced_run_has_late_tail(self, traced_result):
        # A dynamic chunk=1 schedule keeps all threads busy until the end.
        assert tail_start(traced_result) > 0.8 * traced_result.makespan

    def test_threshold_validation(self, traced_result):
        with pytest.raises(ValueError):
            tail_start(traced_result, threshold=0.0)

    def test_trace_utilization_matches_result(self, traced_result):
        assert trace_utilization(traced_result) == pytest.approx(
            traced_result.utilization, rel=0.01
        )
