"""Tests for repro.baselines: naive kernels, correlation, CLR, ARACNE,
cluster-TINGe."""

import numpy as np
import pytest

from repro.baselines.aracne import aracne_network, dpi_prune
from repro.baselines.clr import clr_network, clr_scores
from repro.baselines.cluster_tinge import estimate_cluster_run
from repro.baselines.correlation import (
    correlation_network,
    correlation_pvalues,
    pearson_matrix,
    spearman_matrix,
)
from repro.baselines.naive import joint_probs_scalar, mi_bspline_scalar, mi_histogram_scalar
from repro.core.bspline import BsplineBasis
from repro.core.mi import mi_bspline, mi_histogram_pair
from repro.machine.costmodel import KernelProfile
from repro.machine.spec import BLUEGENE_L_1024, ClusterSpec, XEON_E5_2670_DUAL


class TestNaiveOracles:
    """The scalar kernels are oracles: the fast paths must match them."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bspline_scalar_matches_vectorized(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=70)
        y = x + rng.normal(size=70) * (seed + 0.5)
        assert mi_bspline_scalar(x, y) == pytest.approx(mi_bspline(x, y), rel=1e-10, abs=1e-12)

    def test_histogram_scalar_matches_vectorized(self, rng):
        x = rng.normal(size=90)
        y = rng.normal(size=90)
        assert mi_histogram_scalar(x, y, 8) == pytest.approx(
            mi_histogram_pair(x, y, 8), rel=1e-10, abs=1e-12
        )

    def test_joint_scalar_matches_gemm(self, rng):
        b = BsplineBasis()
        wx = b.weights(rng.normal(size=40))
        wy = b.weights(rng.normal(size=40))
        from repro.core.mi import joint_probs_pair

        assert np.allclose(joint_probs_scalar(wx, wy), joint_probs_pair(wx, wy))

    def test_scalar_input_validation(self, rng):
        with pytest.raises(ValueError):
            mi_histogram_scalar(rng.normal(size=5), rng.normal(size=6))
        with pytest.raises(ValueError):
            joint_probs_scalar(np.zeros((3, 2)), np.zeros((4, 2)))


class TestPearsonSpearman:
    def test_pearson_matches_numpy(self, rng):
        data = rng.normal(size=(6, 50))
        mine = pearson_matrix(data)
        ref = np.corrcoef(data)
        assert np.allclose(mine, ref, atol=1e-10)

    def test_constant_gene_zero(self, rng):
        data = np.vstack([np.full(30, 2.0), rng.normal(size=30)])
        corr = pearson_matrix(data)
        assert corr[0, 1] == 0.0
        assert not np.isnan(corr).any()

    def test_spearman_monotone_invariance(self, rng):
        x = rng.normal(size=(1, 80))
        data = np.vstack([x, np.exp(x)])
        assert spearman_matrix(data)[0, 1] == pytest.approx(1.0)

    def test_spearman_matches_scipy(self, rng):
        import scipy.stats

        data = rng.normal(size=(4, 60))
        mine = spearman_matrix(data)
        ref, _ = scipy.stats.spearmanr(data.T)
        assert np.allclose(mine, ref, atol=1e-10)

    def test_pvalues_small_for_strong_correlation(self, rng):
        x = rng.normal(size=100)
        data = np.vstack([x, x + 0.05 * rng.normal(size=100)])
        p = correlation_pvalues(pearson_matrix(data), 100)
        assert p[0, 1] < 1e-10

    def test_correlation_network_edge_budget(self, rng):
        data = rng.normal(size=(10, 60))
        net = correlation_network(data, [f"g{i}" for i in range(10)], n_edges=7)
        assert net.n_edges == 7

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            correlation_network(rng.normal(size=(3, 10)), list("abc"), 1, method="kendall")


class TestClr:
    def test_shape_and_diagonal(self, rng):
        mi = rng.uniform(0, 1, size=(8, 8))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        scores = clr_scores(mi)
        assert scores.shape == (8, 8)
        assert np.all(np.diag(scores) == 0)
        assert (scores >= 0).all()

    def test_symmetric(self, rng):
        mi = rng.uniform(0, 1, size=(6, 6))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        scores = clr_scores(mi)
        assert np.allclose(scores, scores.T)

    def test_exceptional_edge_amplified(self):
        # A single strong edge in a flat background should get the top score.
        n = 10
        mi = np.full((n, n), 0.1)
        np.fill_diagonal(mi, 0)
        mi[2, 7] = mi[7, 2] = 1.5
        scores = clr_scores(mi)
        iu = np.triu_indices(n, 1)
        top = np.unravel_index(np.argmax(scores), scores.shape)
        assert set(top) == {2, 7}

    def test_network_budget(self, rng):
        mi = rng.uniform(0, 1, size=(9, 9))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        net = clr_network(mi, [f"g{i}" for i in range(9)], n_edges=4)
        assert net.n_edges == 4

    def test_too_few_genes(self):
        with pytest.raises(ValueError):
            clr_scores(np.zeros((2, 2)))


class TestAracneDpi:
    def test_weakest_triangle_edge_removed(self):
        mi = np.zeros((3, 3))
        mi[0, 1] = mi[1, 0] = 1.0
        mi[1, 2] = mi[2, 1] = 0.9
        mi[0, 2] = mi[2, 0] = 0.2  # indirect: 0->1->2
        adj = mi > 0.0
        np.fill_diagonal(adj, False)
        pruned = dpi_prune(mi, adj, tolerance=0.0)
        assert not pruned[0, 2]
        assert pruned[0, 1] and pruned[1, 2]

    def test_tolerance_keeps_borderline(self):
        mi = np.zeros((3, 3))
        mi[0, 1] = mi[1, 0] = 1.0
        mi[1, 2] = mi[2, 1] = 0.9
        mi[0, 2] = mi[2, 0] = 0.85
        adj = mi > 0.0
        np.fill_diagonal(adj, False)
        assert dpi_prune(mi, adj, tolerance=0.2)[0, 2]  # within 20% of 0.9
        assert not dpi_prune(mi, adj, tolerance=0.0)[0, 2]

    def test_no_triangles_nothing_removed(self):
        mi = np.zeros((4, 4))
        mi[0, 1] = mi[1, 0] = 0.5
        mi[2, 3] = mi[3, 2] = 0.4
        adj = mi > 0
        np.fill_diagonal(adj, False)
        assert np.array_equal(dpi_prune(mi, adj), adj)

    def test_result_symmetric(self, rng):
        mi = rng.uniform(0, 1, size=(7, 7))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        adj = mi > 0.3
        np.fill_diagonal(adj, False)
        pruned = dpi_prune(mi, adj)
        assert np.array_equal(pruned, pruned.T)

    def test_pruned_is_subset(self, rng):
        mi = rng.uniform(0, 1, size=(10, 10))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        adj = mi > 0.2
        np.fill_diagonal(adj, False)
        pruned = dpi_prune(mi, adj)
        assert np.all(adj | ~pruned)

    def test_aracne_network(self, rng):
        mi = rng.uniform(0, 1, size=(8, 8))
        mi = (mi + mi.T) / 2
        np.fill_diagonal(mi, 0)
        net = aracne_network(mi, [f"g{i}" for i in range(8)], threshold=0.3)
        assert net.n_edges <= (mi > 0.3).sum() // 2

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            dpi_prune(np.zeros((3, 3)), np.zeros((3, 3), dtype=bool), tolerance=1.0)


class TestClusterTinge:
    @pytest.fixture
    def profile(self):
        return KernelProfile(m_samples=3137, n_permutations_fused=30)

    def test_headline_near_nine_minutes(self, profile):
        est = estimate_cluster_run(BLUEGENE_L_1024, 15575, profile)
        assert 5 * 60 < est.total < 15 * 60

    def test_phases_positive(self, profile):
        est = estimate_cluster_run(BLUEGENE_L_1024, 15575, profile)
        assert est.weights_s > 0 and est.allgather_s > 0
        assert est.compute_s > 0 and est.allreduce_s > 0

    def test_compute_dominates(self, profile):
        est = estimate_cluster_run(BLUEGENE_L_1024, 15575, profile)
        assert est.comm_fraction < 0.2

    def test_single_node_no_comm(self, profile):
        cluster = ClusterSpec("one", 1, XEON_E5_2670_DUAL)
        est = estimate_cluster_run(cluster, 1000, profile)
        assert est.allreduce_s == 0.0

    def test_more_nodes_faster_compute(self, profile):
        half = ClusterSpec("half", 256, BLUEGENE_L_1024.node,
                           latency_us=BLUEGENE_L_1024.latency_us,
                           link_gbs=BLUEGENE_L_1024.link_gbs)
        est_full = estimate_cluster_run(BLUEGENE_L_1024, 8000, profile)
        est_half = estimate_cluster_run(half, 8000, profile)
        assert est_half.compute_s == pytest.approx(2 * est_full.compute_s, rel=0.01)
