"""Tests for repro.parallel.partition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.partition import (
    block_partition,
    chunked_partition,
    cost_balanced_partition,
    cyclic_partition,
    imbalance,
)


def covers_exactly(parts, n):
    all_items = np.concatenate([p for p in parts if p.size] or [np.array([], dtype=int)])
    return sorted(all_items.tolist()) == list(range(n))


class TestBlockPartition:
    def test_covers_all(self):
        assert covers_exactly(block_partition(17, 4), 17)

    def test_contiguous(self):
        for part in block_partition(20, 3):
            if part.size > 1:
                assert np.all(np.diff(part) == 1)

    def test_balanced_sizes(self):
        sizes = [p.size for p in block_partition(22, 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items(self):
        parts = block_partition(3, 10)
        assert covers_exactly(parts, 3)
        assert len(parts) == 10

    def test_zero_items(self):
        assert covers_exactly(block_partition(0, 4), 0)

    @given(n=st.integers(0, 200), p=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_coverage_property(self, n, p):
        assert covers_exactly(block_partition(n, p), n)


class TestCyclicPartition:
    def test_covers_all(self):
        assert covers_exactly(cyclic_partition(23, 4), 23)

    def test_stride(self):
        parts = cyclic_partition(12, 3)
        assert parts[1].tolist() == [1, 4, 7, 10]

    @given(n=st.integers(0, 200), p=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_coverage_property(self, n, p):
        assert covers_exactly(cyclic_partition(n, p), n)


class TestChunkedPartition:
    def test_chunk_sizes(self):
        chunks = chunked_partition(10, 3)
        assert [c.size for c in chunks] == [3, 3, 3, 1]

    def test_covers_all(self):
        assert covers_exactly(chunked_partition(17, 5), 17)

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError):
            chunked_partition(10, 0)


class TestCostBalancedPartition:
    def test_covers_all(self, rng):
        costs = rng.uniform(1, 10, size=30)
        assert covers_exactly(cost_balanced_partition(costs, 4), 30)

    def test_beats_block_on_skewed_costs(self):
        # Linearly decreasing costs (triangular pair rows): LPT must balance
        # far better than a contiguous block split.
        costs = np.arange(100, 0, -1, dtype=float)
        lpt_loads = [costs[p].sum() for p in cost_balanced_partition(costs, 4)]
        blk_loads = [costs[p].sum() for p in block_partition(100, 4)]
        assert imbalance(np.array(lpt_loads)) < imbalance(np.array(blk_loads))

    def test_lpt_greedy_trace(self):
        # LPT on [5,4,3,3,3] / 2 workers: 5->w0, 4->w1, 3->w1, 3->w0, 3->w1
        # giving loads {8, 10} (the classic example where greedy LPT is
        # within 4/3 of the optimal {9, 9} but not optimal).
        costs = np.array([5.0, 4.0, 3.0, 3.0, 3.0])
        loads = sorted(costs[p].sum() for p in cost_balanced_partition(costs, 2))
        assert loads == [8.0, 10.0]
        assert max(loads) <= (4 / 3) * 9.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            cost_balanced_partition(np.array([-1.0]), 2)


class TestImbalance:
    def test_perfect_balance(self):
        assert imbalance(np.array([3.0, 3.0, 3.0])) == 0.0

    def test_known_value(self):
        assert imbalance(np.array([2.0, 4.0])) == pytest.approx(4 / 3 - 1)

    def test_all_zero(self):
        assert imbalance(np.zeros(4)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            imbalance(np.array([]))
