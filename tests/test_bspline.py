"""Tests for repro.core.bspline: basis correctness and weight layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bspline import (
    BsplineBasis,
    basis_matrix,
    knot_vector,
    packed_weights,
    unpack_weights,
    weight_matrix,
    weight_tensor,
)
from repro.stats.histogram import bin_indices


class TestKnotVector:
    def test_clamped_ends(self):
        t = knot_vector(10, 3)
        assert t[:3].tolist() == [0.0, 0.0, 0.0]
        assert t[-3:].tolist() == [8.0, 8.0, 8.0]
        assert len(t) == 13

    def test_interior_uniform(self):
        t = knot_vector(10, 3)
        interior = t[3:10]
        assert np.allclose(np.diff(interior), 1.0)

    def test_order1_is_bin_edges(self):
        t = knot_vector(5, 1)
        assert t.tolist() == [0, 1, 2, 3, 4, 5]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            knot_vector(2, 3)
        with pytest.raises(ValueError):
            knot_vector(5, 0)


class TestBasisMatrix:
    @pytest.mark.parametrize("bins,order", [(10, 1), (10, 2), (10, 3), (10, 4), (7, 3), (4, 4)])
    def test_partition_of_unity(self, bins, order):
        z = np.linspace(0, bins - order + 1, 101)
        w = basis_matrix(z, bins, order)
        assert w.shape == (101, bins)
        assert np.allclose(w.sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("bins,order", [(10, 3), (8, 2), (12, 4)])
    def test_non_negative(self, bins, order):
        z = np.linspace(0, bins - order + 1, 77)
        w = basis_matrix(z, bins, order)
        assert (w >= -1e-12).all()

    def test_at_most_order_nonzeros(self):
        z = np.linspace(0.01, 7.99, 50)
        w = basis_matrix(z, 10, 3)
        assert (np.count_nonzero(w > 1e-14, axis=1) <= 3).all()

    def test_support_is_consecutive(self):
        z = np.linspace(0, 8, 33)
        w = basis_matrix(z, 10, 3)
        for row in w:
            nz = np.nonzero(row > 1e-14)[0]
            if nz.size > 1:
                assert np.all(np.diff(nz) == 1)

    def test_endpoints_get_full_weight(self):
        w = basis_matrix(np.array([0.0, 8.0]), 10, 3)
        assert w[0, 0] == pytest.approx(1.0)
        assert w[1, -1] == pytest.approx(1.0)

    def test_order1_equals_histogram_indicator(self, rng):
        x = rng.uniform(0, 10, size=200)
        w = basis_matrix(x, 10, 1)
        idx = bin_indices(x, 10, lo=0.0, hi=10.0)
        assert np.array_equal(w.argmax(axis=1), idx)
        assert np.allclose(w.sum(axis=1), 1.0)

    def test_quadratic_known_value(self):
        # Order-2 (linear) basis at z = 0.5: halfway between B0 and B1.
        w = basis_matrix(np.array([0.5]), 5, 2)
        assert w[0, 0] == pytest.approx(0.5)
        assert w[0, 1] == pytest.approx(0.5)

    def test_continuity_in_z(self):
        # Order >= 2 basis is continuous: nearby z give nearby weights.
        z = np.linspace(0, 8, 2001)
        w = basis_matrix(z, 10, 3)
        assert np.abs(np.diff(w, axis=0)).max() < 0.02

    def test_out_of_domain_raises(self):
        with pytest.raises(ValueError):
            basis_matrix(np.array([-0.5]), 10, 3)
        with pytest.raises(ValueError):
            basis_matrix(np.array([8.5]), 10, 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            basis_matrix(np.zeros((2, 2)), 10, 3)

    @given(
        bins=st.integers(2, 15),
        order=st.integers(1, 5),
        n=st.integers(1, 60),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_of_unity_property(self, bins, order, n, seed):
        if order > bins:
            return
        rng = np.random.default_rng(seed)
        z = rng.uniform(0, bins - order + 1, size=n)
        w = basis_matrix(z, bins, order)
        assert np.allclose(w.sum(axis=1), 1.0, atol=1e-10)
        assert (w >= -1e-12).all()


class TestBsplineBasis:
    def test_domain(self):
        assert BsplineBasis(10, 3).domain == (0.0, 8.0)

    def test_scale_maps_extremes(self):
        b = BsplineBasis(10, 3)
        z = b.scale(np.array([5.0, 10.0, 15.0]))
        assert z[0] == 0.0 and z[-1] == 8.0

    def test_scale_constant_vector(self):
        b = BsplineBasis(10, 3)
        assert np.all(b.scale(np.full(4, 2.5)) == 0.0)

    def test_scale_explicit_range(self):
        b = BsplineBasis(10, 3)
        z = b.scale(np.array([0.5]), lo=0.0, hi=1.0)
        assert z[0] == pytest.approx(4.0)

    def test_weights_shape(self, rng):
        w = BsplineBasis(10, 3).weights(rng.normal(size=50))
        assert w.shape == (50, 10)

    def test_defaults(self):
        b = BsplineBasis()
        assert (b.bins, b.order) == (10, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BsplineBasis(2, 3)


class TestWeightTensor:
    def test_shape_and_unity(self, rng):
        data = rng.normal(size=(6, 40))
        w = weight_tensor(data, bins=8, order=3)
        assert w.shape == (6, 40, 8)
        assert np.allclose(w.sum(axis=2), 1.0)

    def test_float32(self, rng):
        w = weight_tensor(rng.normal(size=(3, 30)), dtype=np.float32)
        assert w.dtype == np.float32
        assert np.allclose(w.sum(axis=2), 1.0, atol=1e-5)

    def test_matches_single_gene(self, rng):
        data = rng.normal(size=(4, 25))
        w = weight_tensor(data)
        assert np.allclose(w[2], weight_matrix(data[2]))

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            weight_tensor(rng.normal(size=10))


class TestPackedWeights:
    def test_roundtrip(self, rng):
        w = weight_matrix(rng.normal(size=60), bins=10, order=3)
        values, first = packed_weights(w, 3)
        assert values.shape == (60, 3)
        back = unpack_weights(values, first, 10)
        assert np.allclose(back, w)

    def test_roundtrip_order1(self, rng):
        w = weight_matrix(rng.normal(size=30), bins=10, order=1)
        values, first = packed_weights(w, 1)
        assert np.allclose(unpack_weights(values, first, 10), w)

    def test_packed_memory_is_smaller(self, rng):
        w = weight_matrix(rng.normal(size=100), bins=16, order=3)
        values, first = packed_weights(w, 3)
        assert values.size < w.size

    def test_invalid_order(self, rng):
        w = weight_matrix(rng.normal(size=10))
        with pytest.raises(ValueError):
            packed_weights(w, 0)
        with pytest.raises(ValueError):
            packed_weights(w, 99)

    def test_unpack_validates(self):
        with pytest.raises(ValueError):
            unpack_weights(np.ones((3, 2)), np.array([0, 0]), 5)
        with pytest.raises(ValueError):
            unpack_weights(np.ones((2, 3)), np.array([0, 4]), 5)

    def test_roundtrip_bitwise_exact(self, rng):
        w = weight_matrix(rng.normal(size=200), bins=10, order=3)
        values, first = packed_weights(w, 3)
        assert np.array_equal(unpack_weights(values, first, 10), w)

    def test_all_zero_rows_roundtrip(self):
        w = np.zeros((4, 10))
        values, first = packed_weights(w, 3)
        assert (values == 0).all() and (first == 0).all()
        assert np.array_equal(unpack_weights(values, first, 10), w)

    def test_boundary_sample_last_knot_span(self):
        # The domain maximum puts all mass on the last basis function; its
        # window must be clamped into the matrix, not run off the edge.
        w = basis_matrix(np.array([8.0, 7.5, 0.0]), 10, 3)
        values, first = packed_weights(w, 3)
        assert first.max() <= 10 - 3
        assert np.array_equal(unpack_weights(values, first, 10), w)
        assert w[0, 9] == 1.0  # closed right edge: mass on the last function

    def test_dropped_mass_raises(self):
        w = np.zeros((2, 10))
        w[1, 0] = 0.5
        w[1, 6] = 0.5  # disjoint support: cannot fit one 3-wide window
        with pytest.raises(ValueError, match="outside"):
            packed_weights(w, 3)

    def test_support_longer_than_order_raises(self):
        w = np.zeros((1, 10))
        w[0, 2:7] = 0.2  # 5-long run does not fit a 3-wide window
        with pytest.raises(ValueError, match="outside"):
            packed_weights(w, 3)

    def test_unpack_width_exceeding_bins_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            unpack_weights(np.ones((2, 6)), np.array([0, 0]), 5)

    def test_empty_matrix_roundtrip(self):
        w = np.zeros((0, 10))
        values, first = packed_weights(w, 3)
        assert values.shape == (0, 3)
        assert np.array_equal(unpack_weights(values, first, 10), w)


class TestPackedWeightTensor:
    def test_matches_weight_tensor_plus_pack(self, rng):
        from repro.core.bspline import packed_weight_tensor

        data = rng.normal(size=(8, 50))
        values, first = packed_weight_tensor(data, bins=10, order=3)
        assert values.shape == (8, 50, 3) and first.dtype == np.int32
        w = weight_tensor(data, bins=10, order=3)
        ref_v, ref_f = packed_weights(w.reshape(-1, 10), 3)
        assert np.array_equal(values.reshape(-1, 3), ref_v)
        assert np.array_equal(first.reshape(-1), ref_f)

    def test_constant_gene(self):
        from repro.core.bspline import packed_weight_tensor

        data = np.full((2, 20), 3.25)
        values, first = packed_weight_tensor(data, bins=10, order=3)
        # A constant gene maps to domain 0: all mass in the first window.
        assert (first == 0).all()
        assert np.allclose(values.sum(axis=2), 1.0)  # partition of unity

    def test_float32_output(self, rng):
        from repro.core.bspline import packed_weight_tensor

        values, first = packed_weight_tensor(rng.normal(size=(3, 30)),
                                             bins=10, order=3,
                                             dtype=np.float32)
        assert values.dtype == np.float32

    def test_forced_numba_without_numba_raises(self, rng, monkeypatch):
        from repro.core import bspline as bs

        try:
            import numba  # noqa: F401
            pytest.skip("Numba installed; the forced tier is available")
        except ImportError:
            pass
        monkeypatch.setenv("REPRO_BSPLINE_JIT", "numba")
        bs._reset_bspline_jit_cache()
        try:
            with pytest.raises(RuntimeError, match="Numba"):
                bs.packed_weight_tensor(rng.normal(size=(2, 10)))
        finally:
            bs._reset_bspline_jit_cache()

    def test_numpy_tier_forced(self, rng, monkeypatch):
        from repro.core import bspline as bs

        monkeypatch.setenv("REPRO_BSPLINE_JIT", "numpy")
        bs._reset_bspline_jit_cache()
        try:
            data = rng.normal(size=(4, 40))
            values, first = bs.packed_weight_tensor(data)
            w = weight_tensor(data, bins=10, order=3)
            ref_v, ref_f = packed_weights(w.reshape(-1, 10), 3)
            assert np.array_equal(values.reshape(-1, 3), ref_v)
            assert np.array_equal(first.reshape(-1), ref_f)
        finally:
            bs._reset_bspline_jit_cache()

    def test_jit_tier_matches_numpy_tier_bitwise(self, rng, monkeypatch):
        from repro.core import bspline as bs

        try:
            import numba  # noqa: F401
        except ImportError:
            pytest.skip("Numba not installed; single-tier environment")
        data = rng.normal(size=(6, 60))
        monkeypatch.setenv("REPRO_BSPLINE_JIT", "numba")
        bs._reset_bspline_jit_cache()
        jit_v, jit_f = bs.packed_weight_tensor(data)
        monkeypatch.setenv("REPRO_BSPLINE_JIT", "numpy")
        bs._reset_bspline_jit_cache()
        try:
            np_v, np_f = bs.packed_weight_tensor(data)
            assert np.array_equal(jit_v, np_v)
            assert np.array_equal(jit_f, np_f)
        finally:
            bs._reset_bspline_jit_cache()
