"""Tests for repro.machine.validate — and the actual model-vs-host check."""

import time

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.mi_matrix import mi_matrix
from repro.machine.costmodel import KernelProfile
from repro.machine.simulator import MachineSimulator
from repro.machine.spec import XEON_PHI_5110P
from repro.machine.validate import ShapeValidation, loglog_exponent, validate_shape


class TestLogLogExponent:
    def test_quadratic(self):
        x = np.array([1, 2, 4, 8], dtype=float)
        assert loglog_exponent(x, x**2) == pytest.approx(2.0)

    def test_linear(self):
        x = np.array([1, 3, 9], dtype=float)
        assert loglog_exponent(x, 5 * x) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_exponent([1], [1])
        with pytest.raises(ValueError):
            loglog_exponent([1, 2], [0, 1])


class TestValidateShape:
    def test_identical_shapes_zero_error(self):
        x = [1, 2, 4]
        a = [10, 40, 160]
        b = [1, 4, 16]  # same shape, different units
        v = validate_shape(x, a, b)
        assert v.max_ratio_error == pytest.approx(0.0)
        assert v.exponent_gap == pytest.approx(0.0)
        assert v.acceptable()

    def test_different_exponents_fail(self):
        x = [1, 2, 4, 8]
        measured = [1, 2, 4, 8]        # linear
        modelled = [1, 4, 16, 64]      # quadratic
        v = validate_shape(x, measured, modelled)
        assert v.exponent_gap == pytest.approx(1.0)
        assert not v.acceptable()

    def test_validation(self):
        with pytest.raises(ValueError):
            validate_shape([1, 2], [1], [1, 2])
        with pytest.raises(ValueError):
            validate_shape([1, 2], [1, -2], [1, 2])


class TestModelAgainstHostMeasurement:
    def test_gene_scaling_shape_agrees(self):
        """The substitution argument, executed: measured host gene-scaling
        and the Phi model's prediction must share the quadratic shape."""
        rng = np.random.default_rng(17)
        m = 200
        data = rank_transform(rng.normal(size=(256, m)))
        w = weight_tensor(data, dtype=np.float32)
        sizes = [64, 128, 256]

        mi_matrix(w[:64], tile=32)  # warm-up
        measured = []
        for n in sizes:
            best = float("inf")
            for _ in range(2):  # min-of-2: shield against host load spikes
                t0 = time.perf_counter()
                mi_matrix(w[:n], tile=32)
                best = min(best, time.perf_counter() - t0)
            measured.append(best)

        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=m))
        modelled = [sim.predict_seconds(n, 240) for n in sizes]

        v = validate_shape(sizes, measured, modelled)
        assert v.exponent_modelled == pytest.approx(2.0, abs=0.1)
        assert v.acceptable(ratio_tol=1.0, exponent_tol=0.5)
