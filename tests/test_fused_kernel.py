"""Tests for the fused workspace tile kernel and the tile-size autotuner.

The fused kernel (:func:`repro.core.mi.mi_tile_into` /
:func:`repro.core.mi.mi_tile_block`) must be *bit-identical* to the legacy
:func:`repro.core.mi.mi_tile` path at the slab's native precision — it is
the default kernel under every driver, so any last-bit drift would silently
change released results.  Mixed float32 mode trades those guarantees for
speed within a documented tolerance.  The autotuner persists its empirical
tile-size choice in a sidecar JSON cache.
"""

import json

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.entropy import marginal_entropies
from repro.core.mi import (
    TileWorkspace,
    mi_tile,
    mi_tile_block,
    mi_tile_into,
    prepare_operands,
)
from repro.core.mi_matrix import mi_matrix
from repro.core.tiling import (
    autotune_cache_path,
    autotune_tile_size,
    fused_tile_size,
)
from repro.parallel.engine import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    ThreadEngine,
)

# Tile shapes chosen to hit the degenerate 1x1 fallback, odd sizes (which
# historically exposed BLAS transpose-dispatch differences), and edge tiles.
TILE_SHAPES = [(0, 1, 1, 2), (0, 4, 4, 8), (0, 7, 7, 18), (3, 9, 9, 18),
               (0, 6, 6, 7), (0, 18, 0, 18)]


@pytest.fixture(scope="module")
def spline_weights():
    rng = np.random.default_rng(11)
    return weight_tensor(rng.normal(size=(18, 96)))


@pytest.fixture(scope="module")
def dense_weights():
    # Dense strictly-positive joint mass: exposes summation-order drift that
    # the mostly-zero B-spline weights can mask.
    rng = np.random.default_rng(17)
    w = rng.dirichlet(np.ones(10), size=(18, 96))
    return np.ascontiguousarray(w)


class TestFusedBitIdentity:
    @pytest.mark.parametrize("fixture", ["spline_weights", "dense_weights"])
    @pytest.mark.parametrize("base", ["nat", "bit"])
    @pytest.mark.parametrize("i0,i1,j0,j1", TILE_SHAPES)
    def test_into_matches_legacy_float64(self, fixture, base, i0, i1, j0, j1,
                                         request):
        weights = request.getfixturevalue(fixture)
        wi, wj = weights[i0:i1], weights[j0:j1]
        ref = mi_tile(wi, wj, base=base)
        ws = TileWorkspace()
        got = mi_tile_into(wi, wj, base=base, workspace=ws)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("fixture", ["spline_weights", "dense_weights"])
    @pytest.mark.parametrize("i0,i1,j0,j1", TILE_SHAPES)
    def test_block_matches_legacy_float64(self, fixture, i0, i1, j0, j1,
                                          request):
        weights = request.getfixturevalue(fixture)
        ref = mi_tile(weights[i0:i1], weights[j0:j1])
        ws = TileWorkspace()
        got = mi_tile_block(weights, i0, i1, j0, j1, workspace=ws)
        assert np.array_equal(got, ref)

    def test_float32_slab_native_precision(self, dense_weights):
        # dtype=None keeps the slab's own precision: a float32 tensor runs a
        # float32 GEMM bit-identical to the legacy float32 mi_tile path.
        w32 = dense_weights.astype(np.float32)
        ws = TileWorkspace()
        for i0, i1, j0, j1 in TILE_SHAPES:
            ref = mi_tile(w32[i0:i1], w32[j0:j1])
            got = mi_tile_block(w32, i0, i1, j0, j1, workspace=ws)
            assert np.array_equal(got, ref)

    def test_workspace_reuse_across_tiles(self, spline_weights):
        # One workspace carried across every tile of a grid must give the
        # same answers as fresh allocations per call.
        ws = TileWorkspace()
        for i0, i1, j0, j1 in TILE_SHAPES:
            ref = mi_tile_into(spline_weights[i0:i1], spline_weights[j0:j1])
            got = mi_tile_into(spline_weights[i0:i1], spline_weights[j0:j1],
                               workspace=ws)
            assert np.array_equal(got, ref)

    def test_out_parameter(self, spline_weights):
        wi, wj = spline_weights[0:4], spline_weights[4:9]
        out = np.empty((4, 5))
        got = mi_tile_into(wi, wj, out)
        assert got is out
        assert np.array_equal(out, mi_tile(wi, wj))

    def test_out_shape_validated(self, spline_weights):
        with pytest.raises(ValueError):
            mi_tile_into(spline_weights[0:4], spline_weights[4:9],
                         np.empty((3, 5)))

    def test_entropies_accepted(self, dense_weights):
        h = marginal_entropies(dense_weights)
        ref = mi_tile(dense_weights[0:7], dense_weights[7:18])
        got = mi_tile_into(dense_weights[0:7], dense_weights[7:18],
                           h_i=h[0:7], h_j=h[7:18])
        assert np.array_equal(got, ref)


class TestKernelDtype:
    def test_float32_mixed_within_tolerance(self, dense_weights):
        ref = mi_tile(dense_weights[0:9], dense_weights[9:18])
        got = mi_tile_block(dense_weights, 0, 9, 9, 18, dtype="float32")
        # Documented tolerance of the mixed-precision mode: float32 GEMM,
        # float64 entropy accumulation.
        assert np.allclose(got, ref, rtol=1e-5, atol=1e-5)
        assert not np.array_equal(got, ref)  # it really ran in float32

    def test_float64_forced_is_exact(self, dense_weights):
        ref = mi_tile(dense_weights[0:9], dense_weights[9:18])
        got = mi_tile_block(dense_weights, 0, 9, 9, 18, dtype="float64")
        assert np.array_equal(got, ref)

    def test_unknown_dtype_rejected(self, dense_weights):
        with pytest.raises(ValueError):
            mi_tile_block(dense_weights, 0, 4, 4, 8, dtype="float16")

    def test_mi_matrix_kernel_dtype_float32(self, small_weights):
        ref = mi_matrix(small_weights, tile=8).mi
        got = mi_matrix(small_weights, tile=8, kernel_dtype="float32").mi
        assert np.allclose(got, ref, rtol=1e-5, atol=1e-5)

    def test_mi_matrix_kernel_dtype_float64_exact(self, small_weights):
        ref = mi_matrix(small_weights, tile=8).mi
        got = mi_matrix(small_weights, tile=8, kernel_dtype="float64").mi
        assert np.array_equal(got, ref)


class TestEngineEquivalence:
    @pytest.mark.parametrize("kernel_dtype", [None, "float32"])
    def test_all_engines_identical(self, small_weights, kernel_dtype):
        ref = mi_matrix(small_weights, tile=8, kernel_dtype=kernel_dtype).mi
        for engine in (SerialEngine(), ThreadEngine(n_workers=3),
                       ProcessEngine(n_workers=3),
                       SharedMemoryEngine(n_workers=3)):
            got = mi_matrix(small_weights, tile=8, engine=engine,
                            kernel_dtype=kernel_dtype).mi
            assert np.array_equal(got, ref), type(engine).__name__


class TestPrepareOperands:
    def test_cached_by_identity(self, spline_weights):
        a = prepare_operands(spline_weights)
        b = prepare_operands(spline_weights)
        assert a[0] is b[0] and a[1] is b[1]

    def test_dtype_key(self, spline_weights):
        r64, _ = prepare_operands(spline_weights, np.float64)
        r32, _ = prepare_operands(spline_weights, np.float32)
        assert r64.dtype == np.float64 and r32.dtype == np.float32

    def test_layout(self, spline_weights):
        n, m, b = spline_weights.shape
        row_ops, col_ops = prepare_operands(spline_weights)
        assert row_ops.shape == (n, b, m) and row_ops.flags.c_contiguous
        assert col_ops.shape == (m, n * b) and col_ops.flags.c_contiguous


class TestTileWorkspace:
    def test_buffers_reused(self):
        ws = TileWorkspace()
        a = ws.array("x", (4, 8))
        b = ws.array("x", (4, 8))
        assert a is b

    def test_smaller_view_shares_buffer(self):
        ws = TileWorkspace()
        big = ws.array("x", (8, 8))
        small = ws.array("x", (2, 3))
        assert small.base is not None and big.base is small.base

    def test_dtype_change_reallocates(self):
        ws = TileWorkspace()
        a = ws.array("x", (4,), np.float64)
        b = ws.array("x", (4,), np.float32)
        assert b.dtype == np.float32 and a.dtype == np.float64


class TestAutotuner:
    def test_fused_tile_size_power_of_two(self):
        t = fused_tile_size(256, 10)
        assert t & (t - 1) == 0
        assert 8 <= t <= 256

    def test_fused_tile_size_shrinks_with_samples(self):
        assert fused_tile_size(4096, 10) <= fused_tile_size(64, 10)

    def test_cache_path_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(target))
        assert autotune_cache_path() == target

    def test_round_trip(self, small_weights, tmp_path, monkeypatch):
        target = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(target))
        first = autotune_tile_size(small_weights, candidates=(4, 8), repeats=1)
        assert first in (4, 8)
        assert target.exists()
        cache = json.loads(target.read_text())
        assert cache["version"] == 2
        (key,) = cache["entries"].keys()
        m, b = small_weights.shape[1], small_weights.shape[2]
        assert f"m={m};b={b};" in key
        assert ";kernel=fused;" in key
        # Second call must hit the cache, not remeasure.
        second = autotune_tile_size(small_weights, candidates=(4, 8), repeats=1)
        assert second == first

    def test_corrupt_cache_tolerated(self, small_weights, tmp_path, monkeypatch):
        target = tmp_path / "tiles.json"
        target.write_text("{not json")
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(target))
        t = autotune_tile_size(small_weights, candidates=(4, 8), repeats=1)
        assert t in (4, 8)

    def test_no_cache_mode(self, small_weights, tmp_path, monkeypatch):
        target = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(target))
        t = autotune_tile_size(small_weights, candidates=(4, 8), repeats=1,
                               use_cache=False)
        assert t in (4, 8)
        assert not target.exists()

    def test_mi_matrix_autotune(self, small_weights, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "t.json"))
        ref = mi_matrix(small_weights).mi
        tuned = mi_matrix(small_weights, autotune=True).mi
        # A different tile size legitimately changes GEMM shapes (last-bit
        # differences); only the default path is bit-frozen.
        assert np.allclose(tuned, ref, atol=1e-12)
        # Cached rerun must reproduce the tuned matrix exactly.
        again = mi_matrix(small_weights, autotune=True).mi
        assert np.array_equal(again, tuned)
