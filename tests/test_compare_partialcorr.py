"""Tests for repro.analysis.compare, repro.baselines.partialcorr and
repro.core.mi_matrix.mi_row."""

import numpy as np
import pytest

from repro.analysis.compare import compare_networks
from repro.baselines.partialcorr import (
    ggm_network,
    partial_correlation_matrix,
    shrinkage_covariance,
)
from repro.core.bspline import weight_tensor
from repro.core.mi_matrix import mi_matrix, mi_row
from repro.core.network import GeneNetwork
from repro.core.threshold import top_k_adjacency


def make_net(edges, n=5):
    adj = np.zeros((n, n), dtype=bool)
    w = np.zeros((n, n))
    for i, j in edges:
        adj[i, j] = adj[j, i] = True
        w[i, j] = w[j, i] = 1.0
    return GeneNetwork(adj, w, [f"g{i}" for i in range(n)])


class TestCompareNetworks:
    def test_identical(self):
        a = make_net([(0, 1), (2, 3)])
        c = compare_networks(a, make_net([(0, 1), (2, 3)]))
        assert c.jaccard == 1.0
        assert c.hamming == 0
        assert c.n_common == 2

    def test_disjoint(self):
        c = compare_networks(make_net([(0, 1)]), make_net([(2, 3)]))
        assert c.jaccard == 0.0
        assert c.hamming == 2
        assert (c.n_only_a, c.n_only_b) == (1, 1)

    def test_partial_overlap(self):
        c = compare_networks(make_net([(0, 1), (1, 2)]), make_net([(0, 1), (3, 4)]))
        assert c.n_common == 1
        assert c.jaccard == pytest.approx(1 / 3)
        assert c.union == 3

    def test_empty_networks_jaccard_one(self):
        c = compare_networks(make_net([]), make_net([]))
        assert c.jaccard == 1.0
        assert np.isnan(c.degree_correlation)

    def test_degree_correlation(self):
        a = make_net([(0, 1), (0, 2), (0, 3)])  # hub at 0
        b = make_net([(0, 1), (0, 2), (0, 4)])  # hub at 0 too
        c = compare_networks(a, b)
        assert c.degree_correlation > 0.5

    def test_gene_list_mismatch(self):
        a = make_net([(0, 1)])
        b = make_net([(0, 1)], n=6)
        with pytest.raises(ValueError):
            compare_networks(a, b)


class TestShrinkageCovariance:
    def test_explicit_shrinkage_interpolates(self, rng):
        x = rng.normal(size=(4, 100))
        s0, _ = shrinkage_covariance(x, shrinkage=0.0)
        s1, _ = shrinkage_covariance(x, shrinkage=1.0)
        assert np.allclose(s1, np.eye(4) * np.trace(s0) / 4)

    def test_auto_shrinkage_in_bounds(self, rng):
        x = rng.normal(size=(10, 50))
        _, lam = shrinkage_covariance(x)
        assert 0.0 <= lam <= 1.0

    def test_more_samples_less_shrinkage(self, rng):
        x = rng.normal(size=(10, 2000))
        _, lam_big = shrinkage_covariance(x)
        _, lam_small = shrinkage_covariance(x[:, :30])
        assert lam_big < lam_small

    def test_invertible_when_underdetermined(self, rng):
        # More genes than samples: the sample covariance is singular, the
        # shrunk one must not be.
        x = rng.normal(size=(30, 10))
        sigma, lam = shrinkage_covariance(x)
        assert lam > 0
        np.linalg.inv(sigma)  # must not raise

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            shrinkage_covariance(rng.normal(size=10))
        with pytest.raises(ValueError):
            shrinkage_covariance(rng.normal(size=(3, 10)), shrinkage=2.0)


class TestPartialCorrelation:
    def test_chain_structure_separated(self, rng):
        """x -> y -> z: corr(x, z) is large but pcorr(x, z) ~ 0."""
        m = 3000
        x = rng.normal(size=m)
        y = x + 0.4 * rng.normal(size=m)
        z = y + 0.4 * rng.normal(size=m)
        data = np.vstack([x, y, z])
        pc = partial_correlation_matrix(data, shrinkage=0.0)
        marginal = abs(np.corrcoef(x, z)[0, 1])
        assert marginal > 0.6
        assert abs(pc[0, 2]) < 0.15
        assert pc[0, 1] > 0.4 and pc[1, 2] > 0.4

    def test_symmetric_zero_diag(self, rng):
        pc = partial_correlation_matrix(rng.normal(size=(6, 80)))
        assert np.allclose(pc, pc.T)
        assert np.all(np.diag(pc) == 0)
        assert pc.min() >= -1.0 and pc.max() <= 1.0

    def test_ggm_network_budget(self, rng):
        x = rng.normal(size=(8, 60))
        net = ggm_network(x, [f"g{i}" for i in range(8)], n_edges=5)
        assert net.n_edges == 5


class TestMiRow:
    @pytest.fixture(scope="class")
    def weights(self):
        gen = np.random.default_rng(55)
        return weight_tensor(gen.normal(size=(20, 80)))

    def test_matches_full_matrix(self, weights):
        full = mi_matrix(weights).mi
        for g in (0, 7, 19):
            assert np.allclose(mi_row(weights, g), full[g])

    def test_self_entry_zero(self, weights):
        assert mi_row(weights, 5)[5] == 0.0

    def test_block_size_invariance(self, weights):
        a = mi_row(weights, 3, block=4)
        b = mi_row(weights, 3, block=1000)
        assert np.allclose(a, b)

    def test_validation(self, weights):
        with pytest.raises(ValueError):
            mi_row(weights, 99)
        with pytest.raises(ValueError):
            mi_row(weights[0], 0)

    def test_incremental_network_update_flow(self, weights):
        """The intended use: grow a network by one gene without a full
        recompute."""
        full = mi_matrix(weights).mi
        partial = mi_matrix(weights[:19]).mi
        row = mi_row(weights, 19)
        grown = np.zeros((20, 20))
        grown[:19, :19] = partial
        grown[19, :] = row
        grown[:, 19] = row
        assert np.allclose(grown, full)
        # And thresholding the grown matrix equals thresholding the full one.
        assert np.array_equal(top_k_adjacency(grown, 30), top_k_adjacency(full, 30))
