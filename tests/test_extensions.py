"""Tests for the extension features: shrinkage estimator, exact re-test,
affinity placement, roofline analysis, and module detection."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.analysis.modules import (
    connected_modules,
    modularity_modules,
    module_purity,
)
from repro.core.bspline import weight_matrix
from repro.core.entropy import james_stein_shrinkage
from repro.core.mi import mi_bspline_pair, mi_shrinkage_pair
from repro.core.network import GeneNetwork
from repro.machine.costmodel import KernelProfile, roofline_point
from repro.machine.simulator import MachineSimulator
from repro.machine.spec import XEON_E5_2670_DUAL, XEON_PHI_5110P


class TestJamesSteinShrinkage:
    def test_stays_normalized(self, rng):
        p = rng.dirichlet(np.ones(25)).reshape(5, 5)
        shrunk = james_stein_shrinkage(p, 50)
        assert shrunk.sum() == pytest.approx(1.0)
        assert (shrunk >= 0).all()

    def test_moves_toward_uniform(self, rng):
        p = rng.dirichlet(np.ones(10) * 0.1)  # very peaked
        shrunk = james_stein_shrinkage(p, 20)
        uniform = np.full(10, 0.1)
        assert np.linalg.norm(shrunk - uniform) < np.linalg.norm(p - uniform)

    def test_shrinkage_vanishes_with_samples(self, rng):
        p = rng.dirichlet(np.ones(8))
        small_m = james_stein_shrinkage(p, 10)
        large_m = james_stein_shrinkage(p, 100000)
        assert np.linalg.norm(large_m - p) < np.linalg.norm(small_m - p)

    def test_uniform_is_fixed_point(self):
        p = np.full(6, 1 / 6)
        assert np.allclose(james_stein_shrinkage(p, 30), p)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            james_stein_shrinkage(np.array([1.0]), 1)
        with pytest.raises(ValueError):
            james_stein_shrinkage(np.array([]), 10)
        with pytest.raises(ValueError):
            james_stein_shrinkage(np.array([-0.1, 1.1]), 10)


class TestMiShrinkage:
    def test_shrunk_below_plugin_for_dependent(self, rng):
        x = rng.normal(size=60)
        y = x + 0.2 * rng.normal(size=60)
        wx, wy = weight_matrix(x), weight_matrix(y)
        assert 0 < mi_shrinkage_pair(wx, wy) < mi_bspline_pair(wx, wy)

    def test_reduces_small_sample_bias(self, rng):
        """For independent data, plug-in MI is biased up; shrinkage must
        cut the mean estimate substantially."""
        plug, shrunk = [], []
        for seed in range(20):
            g = np.random.default_rng(seed)
            wx = weight_matrix(g.normal(size=30))
            wy = weight_matrix(g.normal(size=30))
            plug.append(mi_bspline_pair(wx, wy))
            shrunk.append(mi_shrinkage_pair(wx, wy))
        assert np.mean(shrunk) < 0.6 * np.mean(plug)

    def test_preserves_dependence_ordering(self, rng):
        x = rng.normal(size=200)
        noise = rng.normal(size=200)
        wx = weight_matrix(x)
        strong = weight_matrix(x + 0.2 * noise)
        weak = weight_matrix(x + 2.0 * noise)
        assert mi_shrinkage_pair(wx, strong) > mi_shrinkage_pair(wx, weak)


class TestExactRetest:
    def test_retest_is_subset_of_screen(self, rng):
        x = rng.normal(size=150)
        data = np.vstack([x, x + 0.15 * rng.normal(size=150),
                          rng.normal(size=(8, 150))])
        base_cfg = TingeConfig(n_permutations=20, alpha=0.05, seed=3)
        retest_cfg = TingeConfig(n_permutations=20, alpha=0.05, seed=3,
                                 exact_retest=True, retest_permutations=50)
        screened = reconstruct_network(data, config=base_cfg)
        retested = reconstruct_network(data, config=retest_cfg)
        assert np.all(screened.network.adjacency | ~retested.network.adjacency)
        assert "retest" in retested.timings

    def test_strong_edge_survives_retest(self, rng):
        x = rng.normal(size=200)
        data = np.vstack([x, x + 0.1 * rng.normal(size=200),
                          rng.normal(size=(4, 200))])
        res = reconstruct_network(
            data, genes=list("abcdef"),
            config=TingeConfig(n_permutations=25, alpha=0.05,
                               exact_retest=True, retest_permutations=80),
        )
        assert ("a", "b") in res.network.edge_set()

    def test_no_candidates_no_retest_phase(self, rng):
        data = rng.normal(size=(6, 100))
        res = reconstruct_network(
            data, config=TingeConfig(n_permutations=30, alpha=0.01,
                                     exact_retest=True),
        )
        if res.network.n_edges == 0:
            assert "retest" not in res.timings

    def test_validation(self):
        with pytest.raises(ValueError):
            TingeConfig(retest_permutations=0)


class TestAffinityPlacement:
    def test_compact_strands_cores(self):
        phi = XEON_PHI_5110P
        assert phi.threads_on_core_count(60, "compact") == [4] * 15
        assert phi.threads_on_core_count(60, "balanced") == [1] * 60

    def test_compact_partial_core(self):
        assert XEON_PHI_5110P.threads_on_core_count(6, "compact") == [4, 2]

    def test_scatter_alias(self):
        phi = XEON_PHI_5110P
        assert phi.threads_on_core_count(90, "scatter") == phi.threads_on_core_count(90)

    def test_balanced_beats_compact_at_partial_occupancy(self):
        phi = XEON_PHI_5110P
        # 60 threads balanced: 60 cores at half issue = 30 core-equivalents.
        # 60 threads compact: 15 cores saturated = 15 core-equivalents.
        bal = phi.effective_gflops(60, "balanced")
        cmp_ = phi.effective_gflops(60, "compact")
        assert bal == pytest.approx(2 * cmp_)

    def test_equal_at_full_occupancy(self):
        phi = XEON_PHI_5110P
        assert phi.effective_gflops(240, "balanced") == pytest.approx(
            phi.effective_gflops(240, "compact")
        )

    def test_simulator_honours_placement(self):
        sim = MachineSimulator(XEON_PHI_5110P,
                               KernelProfile(m_samples=512, n_permutations_fused=10))
        bal = sim.run(400, 60, placement="balanced").makespan
        cmp_ = sim.run(400, 60, placement="compact").makespan
        assert cmp_ / bal == pytest.approx(2.0, rel=0.15)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            XEON_PHI_5110P.threads_on_core_count(10, "explicit")


class TestRoofline:
    def test_untiled_memory_bound_tiled_compute_bound(self):
        profile = KernelProfile(m_samples=3137)
        tiled = roofline_point(XEON_PHI_5110P, profile, tile=32)
        untiled = roofline_point(XEON_PHI_5110P, profile.__class__(
            m_samples=3137, tiled=False))
        assert tiled.compute_bound
        assert not untiled.compute_bound
        assert tiled.arithmetic_intensity > untiled.arithmetic_intensity

    def test_fused_permutations_raise_intensity(self):
        a = roofline_point(XEON_PHI_5110P, KernelProfile(m_samples=3137))
        b = roofline_point(
            XEON_PHI_5110P, KernelProfile(m_samples=3137, n_permutations_fused=30)
        )
        assert b.arithmetic_intensity > 10 * a.arithmetic_intensity

    def test_attainable_capped_by_peak(self):
        rp = roofline_point(XEON_E5_2670_DUAL,
                            KernelProfile(m_samples=3137, n_permutations_fused=30))
        eff_peak = XEON_E5_2670_DUAL.peak_gflops_sp * XEON_E5_2670_DUAL.kernel_efficiency
        assert rp.attainable_gflops <= eff_peak + 1e-9

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            roofline_point(XEON_PHI_5110P, KernelProfile(m_samples=100), tile=0)


class TestModules:
    @pytest.fixture
    def two_cliques(self):
        # Two 3-cliques plus an isolated gene.
        n = 7
        adj = np.zeros((n, n), dtype=bool)
        w = np.zeros((n, n))
        for group in ([0, 1, 2], [3, 4, 5]):
            for i in group:
                for j in group:
                    if i < j:
                        adj[i, j] = adj[j, i] = True
                        w[i, j] = w[j, i] = 0.5
        genes = [f"g{i}" for i in range(n)]
        return GeneNetwork(adj, w, genes)

    def test_connected_modules(self, two_cliques):
        modules = connected_modules(two_cliques)
        assert len(modules) == 2
        assert all(m.size == 3 and m.n_internal_edges == 3 for m in modules)
        assert modules[0].mean_internal_mi == pytest.approx(0.5)

    def test_min_size_filters(self, two_cliques):
        assert len(connected_modules(two_cliques, min_size=4)) == 0

    def test_modularity_modules(self, two_cliques):
        modules = modularity_modules(two_cliques, min_size=2)
        assert len(modules) == 2
        assert {m.genes for m in modules} == {("g0", "g1", "g2"), ("g3", "g4", "g5")}

    def test_empty_network(self):
        net = GeneNetwork(np.zeros((3, 3), dtype=bool), np.zeros((3, 3)),
                          ["a", "b", "c"])
        assert modularity_modules(net) == []
        assert connected_modules(net) == []

    def test_module_purity(self, two_cliques):
        from repro.data.grn import GroundTruthNetwork

        truth = GroundTruthNetwork(
            n_genes=7,
            edges=[[0, 1], [0, 2], [1, 2], [3, 4]],
            strengths=[1.0] * 4,
            genes=two_cliques.genes,
        )
        modules = connected_modules(two_cliques)
        purity = module_purity(modules, truth)
        assert purity == pytest.approx(4 / 6)

    def test_purity_empty(self):
        from repro.data.grn import GroundTruthNetwork

        truth = GroundTruthNetwork(n_genes=2, edges=[[0, 1]], strengths=[1.0])
        assert module_purity([], truth) == 0.0

    def test_end_to_end_module_detection(self):
        from repro.data import yeast_subset

        ds = yeast_subset(n_genes=40, m_samples=250, seed=12)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=20))
        modules = modularity_modules(res.network, min_size=3)
        assert modules  # hub-driven data must yield communities
        assert module_purity(modules, ds.truth) > 0.05

    def test_invalid_min_size(self, two_cliques):
        with pytest.raises(ValueError):
            connected_modules(two_cliques, min_size=0)
        with pytest.raises(ValueError):
            modularity_modules(two_cliques, min_size=0)
