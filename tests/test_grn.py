"""Tests for repro.data.grn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.grn import GroundTruthNetwork, erdos_renyi_grn, scale_free_grn


class TestGroundTruthNetwork:
    def test_basic_construction(self):
        net = GroundTruthNetwork(
            n_genes=4, edges=[[0, 1], [0, 2]], strengths=[1.0, -0.5]
        )
        assert net.n_edges == 2
        assert net.genes == ["G00000", "G00001", "G00002", "G00003"]

    def test_adjacency_symmetric(self):
        net = GroundTruthNetwork(n_genes=3, edges=[[0, 2]], strengths=[1.0])
        adj = net.adjacency()
        assert adj[0, 2] and adj[2, 0]
        assert adj.sum() == 2

    def test_undirected_edge_set(self):
        net = GroundTruthNetwork(n_genes=3, edges=[[0, 1]], strengths=[1.0])
        assert net.undirected_edge_set() == {("G00000", "G00001")}

    def test_regulators_of(self):
        net = GroundTruthNetwork(n_genes=4, edges=[[0, 3], [1, 3], [0, 2]], strengths=[1, 1, 1])
        assert sorted(net.regulators_of(3).tolist()) == [0, 1]

    def test_to_networkx_directed(self):
        net = GroundTruthNetwork(n_genes=3, edges=[[0, 1]], strengths=[-1.0])
        g = net.to_networkx()
        assert g.has_edge("G00000", "G00001")
        assert not g.has_edge("G00001", "G00000")
        assert g["G00000"]["G00001"]["strength"] == -1.0

    def test_rejects_self_edge(self):
        with pytest.raises(ValueError):
            GroundTruthNetwork(n_genes=3, edges=[[1, 1]], strengths=[1.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GroundTruthNetwork(n_genes=2, edges=[[0, 5]], strengths=[1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            GroundTruthNetwork(n_genes=3, edges=[[0, 1]], strengths=[1.0, 2.0])


class TestScaleFreeGrn:
    def test_reproducible(self):
        a = scale_free_grn(100, seed=1)
        b = scale_free_grn(100, seed=1)
        assert np.array_equal(a.edges, b.edges)

    def test_regulators_are_prefix(self):
        net = scale_free_grn(100, n_regulators=10, seed=0)
        assert net.edges[:, 0].max() < 10

    def test_topological_order(self):
        net = scale_free_grn(200, seed=2)
        assert np.all(net.edges[:, 0] < net.edges[:, 1])

    def test_every_target_regulated(self):
        net = scale_free_grn(80, n_regulators=8, seed=3)
        targets = set(net.edges[:, 1].tolist())
        assert set(range(8, 80)) <= targets

    def test_hub_structure(self):
        # Preferential attachment: the most-connected regulator should hold
        # far more than the average share of edges.
        net = scale_free_grn(500, n_regulators=25, seed=4)
        out_deg = np.bincount(net.edges[:, 0], minlength=25)
        assert out_deg.max() > 3 * out_deg.mean()

    def test_mean_in_degree_approximate(self):
        net = scale_free_grn(1000, n_regulators=50, mean_in_degree=3.0, seed=5)
        in_deg = net.n_edges / 950
        assert 2.0 < in_deg < 4.2

    def test_signed_strengths(self):
        net = scale_free_grn(300, repression_fraction=0.5, seed=6)
        frac_neg = (net.strengths < 0).mean()
        assert 0.3 < frac_neg < 0.7

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scale_free_grn(1)
        with pytest.raises(ValueError):
            scale_free_grn(10, n_regulators=10)
        with pytest.raises(ValueError):
            scale_free_grn(10, mean_in_degree=0.0)

    @given(n=st.integers(5, 150), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_valid_structure_property(self, n, seed):
        net = scale_free_grn(n, seed=seed)
        assert np.all(net.edges[:, 0] < net.edges[:, 1])
        assert net.n_edges == net.strengths.size


class TestErdosRenyiGrn:
    def test_exact_edge_count(self):
        net = erdos_renyi_grn(30, 50, seed=0)
        assert net.n_edges == 50

    def test_edges_distinct(self):
        net = erdos_renyi_grn(20, 100, seed=1)
        assert len({tuple(e) for e in net.edges.tolist()}) == 100

    def test_acyclic_order(self):
        net = erdos_renyi_grn(25, 40, seed=2)
        assert np.all(net.edges[:, 0] < net.edges[:, 1])

    def test_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi_grn(5, 11)  # only 10 pairs exist
        with pytest.raises(ValueError):
            erdos_renyi_grn(1, 0)

    def test_zero_edges(self):
        assert erdos_renyi_grn(10, 0, seed=0).n_edges == 0


class TestModularGrn:
    def test_reproducible_and_ordered(self):
        from repro.data.grn import modular_grn

        a = modular_grn(40, seed=1)
        b = modular_grn(40, seed=1)
        assert np.array_equal(a.edges, b.edges)
        assert np.all(a.edges[:, 0] < a.edges[:, 1])

    def test_intra_edges_dominate(self):
        from repro.data.grn import modular_grn

        net = modular_grn(60, n_modules=4, intra_density=0.4,
                          inter_density=0.005, seed=2)
        membership = np.repeat(np.arange(4), 15)
        same = membership[net.edges[:, 0]] == membership[net.edges[:, 1]]
        assert same.mean() > 0.85

    def test_density_parameters_respected(self):
        from repro.data.grn import modular_grn

        dense = modular_grn(50, intra_density=0.5, inter_density=0.0, seed=3)
        sparse = modular_grn(50, intra_density=0.1, inter_density=0.0, seed=3)
        assert dense.n_edges > sparse.n_edges

    def test_single_module_is_erdos_renyi_like(self):
        from repro.data.grn import modular_grn

        net = modular_grn(30, n_modules=1, intra_density=0.2, seed=4)
        assert net.n_edges > 0

    def test_validation(self):
        from repro.data.grn import modular_grn

        with pytest.raises(ValueError):
            modular_grn(1)
        with pytest.raises(ValueError):
            modular_grn(10, n_modules=11)
        with pytest.raises(ValueError):
            modular_grn(10, intra_density=1.5)

    def test_planted_modules_recovered_end_to_end(self):
        """The full loop: planted modules -> expression -> reconstruction ->
        community detection -> the planted partition reappears."""
        from repro import TingeConfig, reconstruct_network
        from repro.analysis import modularity_modules
        from repro.data.expression import simulate_expression
        from repro.data.grn import modular_grn

        truth = modular_grn(40, n_modules=4, intra_density=0.35,
                            inter_density=0.0, seed=5)
        ds = simulate_expression(truth, 400, noise_sd=0.25,
                                 nonlinear_fraction=0.0, seed=6)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=20))
        modules = modularity_modules(res.network, min_size=5)
        assert len(modules) >= 3
        # Each detected module should be dominated by one planted block.
        membership = {g: i // 10 for i, g in enumerate(truth.genes)}
        for module in modules[:4]:
            blocks = [membership[g] for g in module.genes]
            counts = np.bincount(blocks, minlength=4)
            assert counts.max() / counts.sum() > 0.7
