"""Tests for batch effects (repro.data.microarray) and the energy model
(repro.machine.energy)."""

import numpy as np
import pytest

from repro.core.mi import mi_bspline
from repro.data.microarray import add_batch_effects, center_batches
from repro.machine.energy import (
    DEFAULT_TDP_W,
    energy_to_solution,
    platform_power_watts,
)
from repro.machine.spec import BLUEGENE_L_1024, XEON_E5_2670_DUAL, XEON_PHI_5110P


class TestBatchEffects:
    def test_shapes_and_labels(self, rng):
        x = rng.normal(size=(6, 100))
        noisy, labels = add_batch_effects(x, n_batches=4, seed=0)
        assert noisy.shape == x.shape
        assert labels.shape == (100,)
        assert set(labels.tolist()) <= set(range(4))

    def test_creates_spurious_dependence(self, rng):
        """Two independent genes share the batch signal: MI inflates, and
        per-batch centering deflates it back."""
        x = rng.normal(size=(2, 400))
        base_mi = mi_bspline(x[0], x[1])
        noisy, labels = add_batch_effects(x, n_batches=3, strength=3.0, seed=1)
        confounded_mi = mi_bspline(noisy[0], noisy[1])
        corrected = center_batches(noisy, labels)
        corrected_mi = mi_bspline(corrected[0], corrected[1])
        assert confounded_mi > 2 * base_mi
        assert corrected_mi < confounded_mi / 2

    def test_zero_strength_noop(self, rng):
        x = rng.normal(size=(3, 50))
        noisy, _ = add_batch_effects(x, strength=0.0, seed=0)
        assert np.allclose(noisy, x)

    def test_centering_zeroes_batch_means(self, rng):
        x = rng.normal(size=(4, 60))
        noisy, labels = add_batch_effects(x, n_batches=3, seed=2)
        centered = center_batches(noisy, labels)
        for b in range(3):
            cols = labels == b
            if cols.any():
                assert np.allclose(centered[:, cols].mean(axis=1), 0.0, atol=1e-12)

    def test_input_not_modified(self, rng):
        x = rng.normal(size=(2, 20))
        copy = x.copy()
        noisy, labels = add_batch_effects(x, seed=0)
        center_batches(noisy, labels)
        assert np.array_equal(x, copy)

    def test_validation(self, rng):
        x = rng.normal(size=(2, 20))
        with pytest.raises(ValueError):
            add_batch_effects(x, n_batches=0)
        with pytest.raises(ValueError):
            add_batch_effects(x, strength=-1)
        with pytest.raises(ValueError):
            center_batches(x, np.zeros(5))


class TestEnergyModel:
    def test_known_power_figures(self):
        assert platform_power_watts(XEON_PHI_5110P) == 300.0
        assert platform_power_watts(XEON_E5_2670_DUAL) == 300.0
        assert platform_power_watts(BLUEGENE_L_1024) > 10_000

    def test_energy_arithmetic(self):
        e = energy_to_solution(XEON_PHI_5110P, seconds=3600.0)
        assert e.joules == pytest.approx(300.0 * 3600)
        assert e.watt_hours == pytest.approx(300.0)

    def test_watts_override(self):
        e = energy_to_solution(XEON_PHI_5110P, seconds=10.0, watts=100.0)
        assert e.joules == pytest.approx(1000.0)

    def test_name_string_accepted(self):
        e = energy_to_solution("Xeon Phi 5110P", seconds=1.0)
        assert e.watts == 300.0

    def test_unknown_machine_needs_watts(self):
        with pytest.raises(ValueError, match="power figure"):
            energy_to_solution("mystery box", seconds=1.0)
        e = energy_to_solution("mystery box", seconds=1.0, watts=50.0)
        assert e.joules == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_to_solution(XEON_PHI_5110P, seconds=-1.0)
        with pytest.raises(ValueError):
            energy_to_solution(XEON_PHI_5110P, seconds=1.0, watts=0.0)
