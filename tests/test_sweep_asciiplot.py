"""Tests for repro.machine.sweep and repro.bench.ascii_plot."""

import numpy as np
import pytest

from repro.bench.ascii_plot import ascii_hist, ascii_series
from repro.machine.costmodel import KernelProfile
from repro.machine.spec import XEON_E5_2670_DUAL, XEON_PHI_5110P
from repro.machine.sweep import scale_machine, sweep
from repro.parallel.scheduler import DynamicScheduler, StaticScheduler

PROFILE = KernelProfile(m_samples=512, n_permutations_fused=10)


class TestSweep:
    def test_sorted_fastest_first(self):
        points = sweep([XEON_PHI_5110P, XEON_E5_2670_DUAL], PROFILE, 400)
        assert len(points) == 2
        assert points[0].seconds <= points[1].seconds

    def test_full_matrix_size(self):
        points = sweep(
            [XEON_PHI_5110P], PROFILE, 300,
            thread_counts={XEON_PHI_5110P.name: [60, 240]},
            policies=[DynamicScheduler(chunk=1), StaticScheduler()],
            placements=["balanced", "compact"],
        )
        assert len(points) == 2 * 2 * 2

    def test_balanced_dominates_compact_at_partial_occupancy(self):
        points = sweep(
            [XEON_PHI_5110P], PROFILE, 300,
            thread_counts={XEON_PHI_5110P.name: [60]},
            placements=["balanced", "compact"],
        )
        by_placement = {p.placement: p.seconds for p in points}
        assert by_placement["balanced"] < by_placement["compact"]

    def test_as_row_keys(self):
        p = sweep([XEON_PHI_5110P], PROFILE, 200)[0]
        row = p.as_row()
        assert {"machine", "threads", "policy", "placement", "time"} <= set(row)

    def test_empty_machines_rejected(self):
        with pytest.raises(ValueError):
            sweep([], PROFILE, 100)


class TestScaleMachine:
    def test_overrides_applied(self):
        knl = scale_machine(XEON_PHI_5110P, "hypothetical KNL",
                            cores=72, freq_ghz=1.4, mem_bw_gbs=400.0)
        assert knl.cores == 72
        assert knl.freq_ghz == 1.4
        assert knl.name == "hypothetical KNL"
        # Inherited properties stay.
        assert knl.threads_per_core == XEON_PHI_5110P.threads_per_core
        assert knl.smt_efficiency == XEON_PHI_5110P.smt_efficiency

    def test_hypothetical_machine_simulates(self):
        knl = scale_machine(XEON_PHI_5110P, "KNL-ish", cores=72, freq_ghz=1.4)
        points = sweep([XEON_PHI_5110P, knl], PROFILE, 400,
                       thread_counts={XEON_PHI_5110P.name: [240],
                                      "KNL-ish": [288]})
        fastest = points[0]
        assert fastest.machine == "KNL-ish"  # more cores, higher clock


class TestAsciiSeries:
    def test_contains_markers_and_labels(self):
        out = ascii_series([1, 2, 4, 8], [1, 2, 4, 8],
                           x_label="threads", y_label="speedup")
        assert "*" in out
        assert "threads" in out and "speedup" in out

    def test_log_axes(self):
        out = ascii_series([1, 10, 100], [1, 100, 10000],
                           log_x=True, log_y=True)
        assert "(log)" in out
        assert "1e+04" in out or "10000" in out or "1e+4" in out

    def test_monotone_series_monotone_grid(self):
        out = ascii_series([0, 1, 2, 3], [0, 1, 2, 3], width=20, height=8)
        rows = [line for line in out.splitlines() if "*" in line]
        cols = [line.index("*") for line in rows]
        # Rising line: the top row (largest y) holds the rightmost x, so
        # marker columns decrease from top to bottom.
        assert cols == sorted(cols, reverse=True)

    def test_constant_series_ok(self):
        out = ascii_series([1, 2, 3], [5, 5, 5])
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_series([], [])
        with pytest.raises(ValueError):
            ascii_series([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1, 2], width=3)
        with pytest.raises(ValueError):
            ascii_series([0, 1], [1, 2], log_x=True)


class TestAsciiHist:
    def test_counts_rendered(self, rng):
        out = ascii_hist(rng.normal(size=500), bins=10)
        assert "n=500" in out
        assert "#" in out
        assert len(out.splitlines()) == 11

    def test_peak_bar_full_width(self, rng):
        out = ascii_hist(rng.normal(size=1000), bins=5, width=30)
        max_bar = max(line.count("#") for line in out.splitlines())
        assert max_bar == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_hist([])
        with pytest.raises(ValueError):
            ascii_hist([1.0], bins=0)
