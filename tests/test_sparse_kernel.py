"""Tests for the compiled sparse-kernel tier.

The sparse tile kernel (:func:`repro.core.mi.mi_tile_sparse` /
``mi_tile_sparse_block``) consumes the packed ``(values, first)`` layout
and scatters per-sample weight products into the joint histogram instead
of running the dense GEMM.  Three backend tiers exist — Numba JIT, a
cc-compiled shared library, and a pure-numpy scatter — and all of them
must be *bitwise identical* to each other at float64 (one product per
touched cell per sample, accumulated in sample order, no FMA
contraction), so any installed tier is interchangeable.  Against the
dense ``mi_tile`` reference the float64 sparse path agrees to ~1 ulp
(the dense GEMM may contract into FMAs; the summation-order difference
is documented, bounded, and pinned here).
"""

import json
import pickle

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.entropy import marginal_entropies
from repro.core.mi import (
    KERNEL_NAMES,
    TileWorkspace,
    mi_tile,
    mi_tile_sparse,
    mi_tile_sparse_block,
    mi_tile_sparse_packed,
)
from repro.core.mi_matrix import mi_matrix
from repro.core.sparsekernel import (
    PACK_LANES,
    _reset_backend_cache,
    accumulate_tile,
    joint_pad,
    pack_slab,
    prepare_packed,
    sparse_backend,
)

# One ulp of the entropy sums at these magnitudes, with headroom: the
# sparse scatter and the dense GEMM reduce in different orders.
SPARSE_VS_DENSE_ATOL = 1e-13


@pytest.fixture(scope="module")
def weights():
    rng = np.random.default_rng(42)
    return weight_tensor(rng.normal(size=(24, 150)), bins=10, order=3)


@pytest.fixture(scope="module")
def entropies(weights):
    return marginal_entropies(weights, base="nat")


def _forced_backend(monkeypatch, name):
    monkeypatch.setenv("REPRO_SPARSE_BACKEND", name)
    _reset_backend_cache()


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    _reset_backend_cache()


# ---------------------------------------------------------------------------
# Packed slab layout
# ---------------------------------------------------------------------------

class TestPackSlab:
    def test_shape_and_span_inference(self, weights):
        values, first, span = pack_slab(weights)
        n, m, b = weights.shape
        assert values.shape == (n, m, PACK_LANES)
        assert first.shape == (n, m) and first.dtype == np.int32
        assert span == 3  # order-3 splines: at most 3 nonzeros per sample

    def test_pad_lanes_exactly_zero(self, weights):
        values, first, span = pack_slab(weights)
        pad = values[:, :, span:]
        assert (pad == 0.0).all()
        assert not np.signbit(pad).any()  # +0.0, never -0.0

    def test_reconstructs_dense(self, weights):
        values, first, span = pack_slab(weights)
        n, m, b = weights.shape
        dense = np.zeros_like(weights)
        for g in range(n):
            for s in range(m):
                f = first[g, s]
                dense[g, s, f : f + span] = values[g, s, :span]
        assert (dense == weights).all()

    def test_order1_span(self):
        rng = np.random.default_rng(0)
        w = weight_tensor(rng.normal(size=(4, 30)), bins=10, order=1)
        _values, _first, span = pack_slab(w)
        assert span == 1

    def test_span_above_lanes_raises(self):
        rng = np.random.default_rng(0)
        w = weight_tensor(rng.normal(size=(4, 30)), bins=10, order=5)
        with pytest.raises(ValueError, match="span"):
            pack_slab(w)

    def test_prepare_packed_caches_identity(self, weights):
        a = prepare_packed(weights)
        b = prepare_packed(weights)
        assert a[0] is b[0] and a[1] is b[1]

    def test_joint_pad(self):
        assert joint_pad(10) == 10 + PACK_LANES - 1


# ---------------------------------------------------------------------------
# Backend equivalence: numba == cc == numpy, bit for bit at float64
# ---------------------------------------------------------------------------

class TestBackendEquivalence:
    def test_some_backend_selected(self):
        assert sparse_backend() in ("numba", "cc", "numpy")

    def test_forced_unavailable_raises(self, monkeypatch):
        _forced_backend(monkeypatch, "not-a-backend")
        with pytest.raises(ValueError):
            sparse_backend()

    def test_numpy_fallback_bitwise_identical_f64(self, weights, entropies,
                                                  monkeypatch):
        native = mi_tile_sparse(weights[:8], weights[8:20],
                                h_i=entropies[:8], h_j=entropies[8:20])
        _forced_backend(monkeypatch, "numpy")
        assert sparse_backend() == "numpy"
        fallback = mi_tile_sparse(weights[:8], weights[8:20],
                                  h_i=entropies[:8], h_j=entropies[8:20])
        assert np.array_equal(native, fallback)

    def test_host_tag_stable_hex(self):
        # The cc cache name carries a CPU tag (-march=native .so files are
        # not portable across heterogeneous hosts sharing a cache dir).
        from repro.core.sparsekernel import _host_tag

        tag = _host_tag()
        assert tag == _host_tag() and len(tag) == 8
        int(tag, 16)  # hex digest

    def test_numpy_fallback_accumulator_bitwise_f64(self, weights, monkeypatch):
        values, first, span = pack_slab(weights)
        b = weights.shape[2]
        shape = (4, 4, b, joint_pad(b))
        native = np.empty(shape, dtype=np.float64)
        accumulate_tile(values[:4], first[:4], values[4:8], first[4:8],
                        span, b, native)
        _forced_backend(monkeypatch, "numpy")
        fallback = np.empty(shape, dtype=np.float64)
        accumulate_tile(values[:4], first[:4], values[4:8], first[4:8],
                        span, b, fallback)
        assert np.array_equal(native, fallback)


# ---------------------------------------------------------------------------
# Mixed-span tiles: independently packed slabs with different spans
# ---------------------------------------------------------------------------

def _single_bin_slab(n, m, b, rng):
    """Span-1 slab with guaranteed support at the last bin (first = b-1)."""
    w = np.zeros((n, m, b))
    cols = rng.integers(0, b, size=(n, m))
    cols[:, : max(1, m // 8)] = b - 1
    w[np.arange(n)[:, None], np.arange(m)[None, :], cols] = 1.0
    return w


class TestMixedSpanTiles:
    """Regression for the mixed-span out-of-bounds scatter.

    ``pack_slab`` clamps ``first`` to ``b - span_own``, but the kernels
    iterate the tile's *shared* (max) span of row lanes: a span-1 slab
    with support at the last bin (binary / low-cardinality genes) paired
    with a span-3 slab used to produce row indices up to ``b + 1`` — a
    deterministic crash in the numpy backend and unchecked out-of-bounds
    writes in the compiled ones.  ``mi_tile_sparse`` now repacks the
    narrower slab at the shared span, and ``accumulate_tile`` rejects
    under-clamped operands outright.
    """

    @pytest.fixture()
    def slabs(self):
        rng = np.random.default_rng(21)
        m, b = 120, 10
        narrow = _single_bin_slab(3, m, b, rng)
        wide = weight_tensor(rng.normal(size=(4, m)), bins=b, order=3)
        return narrow, wide

    def test_pack_spans_differ(self, slabs):
        narrow, wide = slabs
        _, f1, s1 = pack_slab(narrow)
        _, _, s3 = pack_slab(wide)
        assert s1 == 1 and s3 == 3
        assert int(f1.max()) == narrow.shape[2] - 1  # the hazardous clamp

    def test_narrow_rows_match_dense(self, slabs):
        narrow, wide = slabs
        h_n = marginal_entropies(narrow)
        h_w = marginal_entropies(wide)
        ref = mi_tile(narrow, wide, h_i=h_n, h_j=h_w)
        got = mi_tile_sparse(narrow, wide, h_i=h_n, h_j=h_w)
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_wide_rows_match_dense(self, slabs):
        narrow, wide = slabs
        h_n = marginal_entropies(narrow)
        h_w = marginal_entropies(wide)
        ref = mi_tile(wide, narrow, h_i=h_w, h_j=h_n)
        got = mi_tile_sparse(wide, narrow, h_i=h_w, h_j=h_n)
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    @pytest.mark.parametrize("backend", ["numpy", "cc", "numba"])
    def test_each_backend_mixed_span(self, slabs, monkeypatch, backend):
        import repro.core.sparsekernel as sk

        if backend == "cc" and sk._cc_library() is None:
            pytest.skip("no C compiler")
        if backend == "numba" and sk._numba_tile_fn() is None:
            pytest.skip("numba not installed")
        _forced_backend(monkeypatch, backend)
        narrow, wide = slabs
        h_n = marginal_entropies(narrow)
        h_w = marginal_entropies(wide)
        ref = mi_tile(narrow, wide, h_i=h_n, h_j=h_w)
        got = mi_tile_sparse(narrow, wide, h_i=h_n, h_j=h_w)
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_mixed_span_float32(self, slabs):
        narrow, wide = slabs
        h_n = marginal_entropies(narrow)
        h_w = marginal_entropies(wide)
        ref = mi_tile(narrow, wide, h_i=h_n, h_j=h_w)
        got = mi_tile_sparse(narrow, wide, h_i=h_n, h_j=h_w, dtype="float32")
        np.testing.assert_allclose(got, ref, rtol=0, atol=5e-6)

    def test_accumulate_tile_rejects_underclamped_first(self, slabs):
        narrow, wide = slabs
        b = narrow.shape[2]
        vn, fn, _ = pack_slab(narrow)
        vw, fw, sw = pack_slab(wide)
        out = np.empty((3, 4, b, joint_pad(b)))
        with pytest.raises(ValueError, match="shared span"):
            accumulate_tile(vn, fn, vw, fw, sw, b, out)

    def test_pack_slab_span_override(self):
        b = 10
        w = np.zeros((1, 5, b))
        w[0, :, b - 1] = 1.0
        _v1, f1, s1 = pack_slab(w)
        assert s1 == 1 and int(f1.max()) == b - 1
        v3, f3, s3 = pack_slab(w, span=3)
        assert s3 == 3 and int(f3.max()) == b - 3
        # The unit weight still maps to bin b-1 via lane (b-1) - first.
        assert (v3[0, :, 2] == 1.0).all()
        assert (v3[0, :, :2] == 0.0).all()

    def test_pack_slab_span_below_observed_raises(self, slabs):
        _narrow, wide = slabs
        with pytest.raises(ValueError, match="span"):
            pack_slab(wide, span=2)

    def test_pack_slab_span_above_bins_raises(self):
        w = np.zeros((1, 3, 2))
        w[:, :, 0] = 1.0
        with pytest.raises(ValueError, match="span"):
            pack_slab(w, span=3)  # 2 bins cannot hold a 3-lane window


# ---------------------------------------------------------------------------
# Sparse kernel vs the dense reference
# ---------------------------------------------------------------------------

class TestSparseKernel:
    def test_matches_mi_tile_f64(self, weights, entropies):
        ref = mi_tile(weights[:10], weights[10:24],
                      h_i=entropies[:10], h_j=entropies[10:24])
        got = mi_tile_sparse(weights[:10], weights[10:24],
                             h_i=entropies[:10], h_j=entropies[10:24])
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_slab_and_block_forms_bitwise_equal(self, weights, entropies):
        slab = mi_tile_sparse(weights[:6], weights[6:18],
                              h_i=entropies[:6], h_j=entropies[6:18])
        block = mi_tile_sparse_block(weights, 0, 6, 6, 18,
                                     h_i=entropies[:6], h_j=entropies[6:18])
        assert np.array_equal(slab, block)

    def test_packed_form_bitwise_equal(self, weights, entropies):
        values, first, span = pack_slab(weights)
        b = weights.shape[2]
        m = weights.shape[1]
        block = mi_tile_sparse_block(weights, 0, 6, 6, 18,
                                     h_i=entropies[:6], h_j=entropies[6:18])
        packed = mi_tile_sparse_packed(values[0:6], first[0:6],
                                       values[6:18], first[6:18],
                                       span, b, m,
                                       h_i=entropies[:6], h_j=entropies[6:18])
        assert np.array_equal(block, packed)

    def test_packed_dtype_mismatch_raises(self, weights, entropies):
        values, first, span = pack_slab(weights)
        with pytest.raises(ValueError, match="dtype"):
            mi_tile_sparse_packed(values[:4], first[:4], values[4:8],
                                  first[4:8], span, weights.shape[2],
                                  weights.shape[1],
                                  h_i=entropies[:4], h_j=entropies[4:8],
                                  dtype="float32")

    def test_float32_within_tolerance(self, weights, entropies):
        ref = mi_tile(weights[:10], weights[10:24],
                      h_i=entropies[:10], h_j=entropies[10:24])
        got = mi_tile_sparse(weights[:10], weights[10:24],
                             h_i=entropies[:10], h_j=entropies[10:24],
                             dtype="float32")
        np.testing.assert_allclose(got, ref, rtol=0, atol=5e-6)

    def test_1x1_tile(self, weights, entropies):
        ref = mi_tile(weights[:1], weights[1:2],
                      h_i=entropies[:1], h_j=entropies[1:2])
        got = mi_tile_sparse(weights[:1], weights[1:2],
                             h_i=entropies[:1], h_j=entropies[1:2])
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_base_bit(self, weights, entropies):
        h = marginal_entropies(weights, base="bit")
        ref = mi_tile(weights[:6], weights[6:12], h_i=h[:6], h_j=h[6:12],
                      base="bit")
        got = mi_tile_sparse(weights[:6], weights[6:12], h_i=h[:6],
                             h_j=h[6:12], base="bit")
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_constant_gene_zero_mi(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(4, 60))
        data[1] = 2.5  # constant gene: all weight mass in the first bins
        w = weight_tensor(data, bins=10, order=3)
        h = marginal_entropies(w)
        got = mi_tile_sparse(w[:2], w[2:4], h_i=h[:2], h_j=h[2:4])
        ref = mi_tile(w[:2], w[2:4], h_i=h[:2], h_j=h[2:4])
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)
        assert got[1].max() < 1e-12  # MI against a constant is 0

    def test_fewer_samples_than_bins(self):
        rng = np.random.default_rng(6)
        w = weight_tensor(rng.normal(size=(6, 7)), bins=10, order=3)
        h = marginal_entropies(w)
        ref = mi_tile(w[:3], w[3:6], h_i=h[:3], h_j=h[3:6])
        got = mi_tile_sparse(w[:3], w[3:6], h_i=h[:3], h_j=h[3:6])
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_workspace_reuse_across_tile_shapes(self, weights, entropies):
        ws = TileWorkspace()
        a = mi_tile_sparse(weights[:8], weights[8:16], h_i=entropies[:8],
                           h_j=entropies[8:16], workspace=ws)
        b = mi_tile_sparse(weights[:3], weights[3:8], h_i=entropies[:3],
                           h_j=entropies[3:8], workspace=ws)
        fresh = mi_tile_sparse(weights[:3], weights[3:8], h_i=entropies[:3],
                               h_j=entropies[3:8])
        assert np.array_equal(b, fresh)
        assert a.shape == (8, 8)


# ---------------------------------------------------------------------------
# Driver integration
# ---------------------------------------------------------------------------

class TestKernelVariantRouting:
    def test_kernel_names(self):
        assert set(KERNEL_NAMES) == {"legacy", "fused", "sparse", "auto"}

    def test_mi_matrix_sparse_close_to_fused(self, weights):
        ref = mi_matrix(weights, tile=8).mi
        got = mi_matrix(weights, tile=8, kernel="sparse").mi
        np.testing.assert_allclose(got, ref, rtol=0, atol=SPARSE_VS_DENSE_ATOL)

    def test_mi_matrix_legacy_bitwise_equals_fused(self, weights):
        ref = mi_matrix(weights, tile=8).mi
        got = mi_matrix(weights, tile=8, kernel="legacy").mi
        assert np.array_equal(got, ref)

    def test_mi_matrix_unknown_kernel_raises(self, weights):
        with pytest.raises(ValueError, match="kernel"):
            mi_matrix(weights, kernel="bogus")

    def test_sparse_composes_with_kernel_dtype(self, weights):
        ref = mi_matrix(weights, tile=8).mi
        got = mi_matrix(weights, tile=8, kernel="sparse",
                        kernel_dtype="float32").mi
        np.testing.assert_allclose(got, ref, rtol=0, atol=5e-6)

    def test_numpy_fallback_through_mi_matrix(self, weights, monkeypatch):
        native = mi_matrix(weights, tile=8, kernel="sparse").mi
        _forced_backend(monkeypatch, "numpy")
        fallback = mi_matrix(weights, tile=8, kernel="sparse").mi
        assert np.array_equal(native, fallback)

    def test_pipeline_config_kernel_validated(self):
        from repro.core.pipeline import TingeConfig

        assert TingeConfig(kernel="sparse").kernel == "sparse"
        with pytest.raises(ValueError, match="kernel"):
            TingeConfig(kernel="dense")

    def test_auto_kernel_resolves_and_persists(self, tmp_path, monkeypatch):
        # Enough genes that the smallest tile candidate fits the sample.
        rng = np.random.default_rng(13)
        weights = weight_tensor(rng.normal(size=(40, 60)), bins=10, order=3)
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "t.json"))
        res = mi_matrix(weights, kernel="auto")
        assert res.mi.shape == (40, 40)
        data = json.loads((tmp_path / "t.json").read_text())
        assert data["version"] == 2
        auto = [v for k, v in data["entries"].items() if ";kernel=auto;" in k]
        assert auto and auto[0]["kernel"] in ("legacy", "fused", "sparse")


# ---------------------------------------------------------------------------
# PackedWeightSource: packed slabs over the wire
# ---------------------------------------------------------------------------

class TestPackedWeightSource:
    @pytest.fixture()
    def source(self, weights):
        from repro.core.exec import PackedWeightSource, TensorSource

        return PackedWeightSource.from_source(TensorSource(weights))

    def test_slab_reconstructs_dense(self, source, weights):
        assert np.array_equal(source.slab(3, 17), weights[3:17])

    def test_entropies_carried_from_dense_source(self, source, entropies):
        assert np.array_equal(source.entropies("nat"), entropies)

    def test_pickle_round_trip_smaller_than_dense(self, source, weights):
        blob = pickle.dumps(source, protocol=5)
        dense = pickle.dumps(weights, protocol=5)
        assert len(blob) < 0.5 * len(dense)
        back = pickle.loads(blob)
        assert np.array_equal(back.slab(0, 24), weights)

    def test_packed_returns_lane_padded_layout(self, source, weights):
        values, first, span = source.packed()
        assert values.shape == (24, weights.shape[1], PACK_LANES)
        assert span == 3 and source.bins == weights.shape[2]

    def test_mi_matrix_over_packed_source_matches(self, source, weights):
        ref = mi_matrix(weights, tile=8, kernel="sparse").mi
        got = mi_matrix(source, tile=8, kernel="sparse").mi
        assert np.array_equal(got, ref)


# ---------------------------------------------------------------------------
# Autotune sidecar: v2 schema + v1 migration
# ---------------------------------------------------------------------------

class TestAutotuneSidecarV2:
    def test_v1_flat_file_migrates(self, tmp_path, monkeypatch):
        from repro.core.tiling import _load_autotune_cache

        path = tmp_path / "tiles.json"
        path.write_text(json.dumps(
            {"m=100;b=10;dtype=float64;engine=serial;host=h1": 32}))
        cache = _load_autotune_cache(path)
        assert cache == {
            "m=100;b=10;dtype=float64;engine=serial;kernel=fused;host=h1": 32}

    def test_v1_entry_honored_without_remeasure(self, weights, tmp_path,
                                                monkeypatch):
        import socket

        from repro.core.tiling import autotune_tile_size

        path = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(path))
        m, b = weights.shape[1], weights.shape[2]
        host = socket.gethostname()
        path.write_text(json.dumps(
            {f"m={m};b={b};dtype=float64;engine=serial;host={host}": 64}))
        assert autotune_tile_size(weights, candidates=(4, 8), repeats=1) == 64

    def test_unknown_future_version_ignored(self, tmp_path):
        from repro.core.tiling import _load_autotune_cache

        path = tmp_path / "tiles.json"
        path.write_text(json.dumps({"version": 99, "entries": {"k": 8}}))
        assert _load_autotune_cache(path) == {}

    def test_kernel_variants_get_distinct_entries(self, weights, tmp_path,
                                                  monkeypatch):
        from repro.core.tiling import autotune_tile_size

        path = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(path))
        autotune_tile_size(weights, candidates=(4, 8), repeats=1)
        autotune_tile_size(weights, candidates=(4, 8), repeats=1,
                           kernel="sparse")
        keys = json.loads(path.read_text())["entries"].keys()
        assert any(";kernel=fused;" in k for k in keys)
        assert any(";kernel=sparse;" in k for k in keys)

    def test_autotune_kernel_round_trip(self, weights, tmp_path, monkeypatch):
        from repro.core.tiling import autotune_kernel

        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "t.json"))
        kernel, tile = autotune_kernel(weights, candidates=(4, 8), repeats=1)
        assert kernel in ("legacy", "fused", "sparse") and tile in (4, 8)
        again = autotune_kernel(weights, candidates=(4, 8), repeats=1)
        assert again == (kernel, tile)


# ---------------------------------------------------------------------------
# Compiled weight phase (packed_weight_tensor)
# ---------------------------------------------------------------------------

class TestPackedWeightTensor:
    def test_matches_dense_pack_bitwise(self):
        from repro.core.bspline import packed_weight_tensor, packed_weights

        rng = np.random.default_rng(11)
        data = rng.normal(size=(10, 80))
        values, first = packed_weight_tensor(data, bins=10, order=3)
        w = weight_tensor(data, bins=10, order=3)
        ref_v, ref_f = packed_weights(w.reshape(-1, 10), 3)
        assert np.array_equal(values.reshape(-1, 3), ref_v)
        assert np.array_equal(first.reshape(-1), ref_f)

    def test_feeds_sparse_mi_bitwise(self):
        from repro.core.bspline import packed_weight_tensor

        rng = np.random.default_rng(12)
        data = rng.normal(size=(12, 90))
        w = weight_tensor(data, bins=10, order=3)
        h = marginal_entropies(w)
        ref = mi_tile_sparse(w[:6], w[6:12], h_i=h[:6], h_j=h[6:12])
        values, first = packed_weight_tensor(data, bins=10, order=3)
        lanes = np.zeros((12, 90, PACK_LANES), dtype=np.float64)
        lanes[:, :, :3] = values
        got = mi_tile_sparse_packed(lanes[:6], first[:6].astype(np.int32),
                                    lanes[6:12], first[6:12].astype(np.int32),
                                    3, 10, 90, h_i=h[:6], h_j=h[6:12])
        assert np.array_equal(got, ref)
