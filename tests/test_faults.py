"""Chaos suite: injected faults x engines x drivers.

Every test asserts the recovery invariant that matters at whole-genome
scale: a run under injected crash/hang/corrupt faults produces the
*bit-identical* MI matrix (and network) of a clean run, or — when the
retry budget is exhausted — enumerates exactly which tiles it gave up on
instead of aborting.
"""

import json

import numpy as np
import pytest

from repro.cluster.distributed import distributed_reconstruct
from repro.core.bspline import weight_tensor
from repro.core.checkpoint import checkpoint_status, mi_matrix_checkpointed
from repro.core.mi_matrix import mi_matrix
from repro.core.outofcore import build_weight_store, mi_matrix_outofcore
from repro.faults import (
    FAULT_KINDS,
    REPRO_FAULTS_ENV,
    FaultPlan,
    FaultPolicy,
    FaultToleranceExceeded,
    InjectedFault,
    plan_from_env,
    task_key,
)
from repro.obs import Tracer, fault_summary, load_events, write_jsonl
from repro.parallel import ENGINE_KINDS, make_engine

N_GENES = 14
TILE = 5  # 3x3 upper-tri block grid -> 6 tiles
CHAOS_SEED = 3  # faults tiles (0,5), (0,10), (10,10) at rate 0.5
CHAOS_RATE = 0.5

ENGINES = ["serial", "thread", "process", "sharedmem"]
FORK_ENGINES = ("process", "sharedmem")


@pytest.fixture(scope="module")
def weights():
    rng = np.random.default_rng(7)
    return weight_tensor(rng.normal(size=(N_GENES, 24)))


@pytest.fixture(scope="module")
def baseline(weights):
    return mi_matrix(weights, tile=TILE).mi


def _engine(kind, faults=None, n_workers=2):
    try:
        return make_engine(kind, n_workers=n_workers, faults=faults)
    except RuntimeError as exc:  # no fork start method on this platform
        pytest.skip(f"{kind} engine unavailable: {exc}")


def _chaos_plan(kind_of_fault, fork, max_failures=1):
    # Fork engines get a long hang + short timeout so hung-worker
    # replacement actually fires; in-process hangs can't be killed, so
    # they just add a short delay.
    hang = 2.0 if fork else 0.02
    return FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=(kind_of_fault,),
                     max_failures=max_failures, hang_seconds=hang)


class TestFaultPlan:
    def test_deterministic_across_instances(self):
        a = FaultPlan(seed=11, rate=0.5)
        b = FaultPlan(seed=11, rate=0.5)
        keys = [f"tile:{i}:{j}" for i in range(0, 40, 5) for j in range(0, 40, 5)]
        assert [a.decide(k) for k in keys] == [b.decide(k) for k in keys]
        c = FaultPlan(seed=12, rate=0.5)
        assert [a.decide(k) for k in keys] != [c.decide(k) for k in keys]

    def test_env_round_trip(self):
        plan = FaultPlan(seed=5, rate=0.3, kinds=("crash", "hang"),
                         max_failures=None, hang_seconds=0.5,
                         engine_failures=2, scope="all")
        back = FaultPlan.from_env(plan.to_env())
        assert (back.seed, back.rate, back.kinds) == (5, 0.3, ("crash", "hang"))
        assert back.max_failures is None
        assert back.hang_seconds == 0.5
        assert back.engine_failures == 2
        assert back.scope == "all"
        keys = [f"tile:{i}:{j}" for i in range(0, 30, 5) for j in range(0, 30, 5)]
        assert [plan.decide(k) for k in keys] == [back.decide(k) for k in keys]

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv(REPRO_FAULTS_ENV, raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv(REPRO_FAULTS_ENV, FaultPlan(seed=9).to_env())
        assert plan_from_env().seed == 9
        monkeypatch.setenv(REPRO_FAULTS_ENV, "{not json")
        with pytest.raises(ValueError, match=REPRO_FAULTS_ENV):
            plan_from_env()

    def test_scope_tiles_only_faults_tiles(self):
        plan = FaultPlan(seed=1, rate=1.0)
        assert plan.decide("tile:0:0") is not None
        assert plan.decide("item:0") is None  # null-phase batches untouched
        assert FaultPlan(seed=1, rate=1.0, scope="all").decide("item:0") is not None

    def test_failure_budget_recovers(self):
        plan = FaultPlan(seed=1, rate=1.0, kinds=("crash",), max_failures=2)
        key = "tile:0:0"
        assert plan.should_fire(key) is not None
        plan.record_failure(0)  # int 0 -> "item:0", unrelated key
        assert plan.should_fire(key) is not None

        class T:
            i0, j0 = 0, 0

        plan.record_failure(T())
        assert plan.should_fire(key) is not None  # one failure burned of two
        plan.record_failure(T())
        assert plan.should_fire(key) is None  # budget exhausted -> runs clean

    def test_sticky_fault_never_recovers(self):
        plan = FaultPlan(seed=1, rate=1.0, kinds=("crash",), max_failures=None)

        class T:
            i0, j0 = 0, 0

        for _ in range(5):
            plan.record_failure(T())
        assert plan.should_fire("tile:0:0") is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError, match="kinds"):
            FaultPlan(kinds=("segfault",))
        with pytest.raises(ValueError, match="scope"):
            FaultPlan(scope="rows")

    def test_task_key_stability(self):
        class T:
            i0, j0 = 3, 9

        assert task_key(T()) == "tile:3:9"
        assert task_key(7) == "item:7"
        assert task_key(np.int64(7)) == "item:7"
        assert task_key("x") == task_key("x")


class TestChaosMatrix:
    """The acceptance matrix: every fault kind x every engine recovers to
    the bit-identical MI matrix."""

    @pytest.mark.parametrize("kind", ENGINES)
    @pytest.mark.parametrize("fault", list(FAULT_KINDS))
    def test_recovers_bit_identical(self, weights, baseline, kind, fault):
        fork = kind in FORK_ENGINES
        if fault == "hang" and fork:
            timeout = 0.25
        else:
            timeout = None
        plan = _chaos_plan(fault, fork)
        assert plan.faulted(_tiles(weights))  # the seed must fault something
        eng = _engine(kind, faults=plan)
        tracer = Tracer()
        policy = FaultPolicy(max_retries=3, backoff=0.01, task_timeout=timeout)
        res = mi_matrix(weights, tile=TILE, engine=eng, tracer=tracer,
                        policy=policy)
        assert np.array_equal(res.mi, baseline)
        assert res.quarantined == []
        if fault == "crash":
            assert tracer.counters.get("task_retries", 0) >= 1
        elif fault == "corrupt":
            assert tracer.counters.get("task_corruptions", 0) >= 1
        elif fork:  # hang on a killable engine -> timeout + replacement
            assert tracer.counters.get("task_timeouts", 0) >= 1

    @pytest.mark.parametrize("kind", ENGINES)
    @pytest.mark.parametrize("fault", ["crash", "corrupt"])
    def test_sparse_kernel_recovers_bit_identical(self, weights, kind, fault):
        """Chaos through the sparse tile path: retries replay the packed
        scatter kernel and must land on the clean sparse matrix exactly."""
        fork = kind in FORK_ENGINES
        sparse_baseline = mi_matrix(weights, tile=TILE, kernel="sparse").mi
        plan = _chaos_plan(fault, fork)
        assert plan.faulted(_tiles(weights))
        eng = _engine(kind, faults=plan)
        tracer = Tracer()
        policy = FaultPolicy(max_retries=3, backoff=0.01)
        res = mi_matrix(weights, tile=TILE, kernel="sparse", engine=eng,
                        tracer=tracer, policy=policy)
        assert np.array_equal(res.mi, sparse_baseline)
        assert res.quarantined == []
        counter = "task_retries" if fault == "crash" else "task_corruptions"
        assert tracer.counters.get(counter, 0) >= 1

    def test_no_policy_crash_propagates(self, weights):
        plan = _chaos_plan("crash", fork=False)
        eng = _engine("thread", faults=plan)
        with pytest.raises(InjectedFault):
            mi_matrix(weights, tile=TILE, engine=eng)

    def test_no_faults_with_policy_is_identical(self, weights, baseline):
        tracer = Tracer()
        res = mi_matrix(weights, tile=TILE, engine=_engine("thread"),
                        tracer=tracer, policy=FaultPolicy(max_retries=2))
        assert np.array_equal(res.mi, baseline)
        assert all(tracer.counters.get(k, 0) == 0
                   for k in ("task_retries", "task_timeouts",
                             "task_corruptions", "tasks_quarantined",
                             "engine_fallbacks"))


def _tiles(weights):
    from repro.core.exec import TensorSource, plan_tiles

    return plan_tiles(TensorSource(weights), tile=TILE).tiles


class TestQuarantine:
    def test_sticky_faults_quarantine_instead_of_abort(self, weights, baseline):
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)  # never recovers
        poisoned = {s.key for s in plan.faulted(_tiles(weights))}
        assert poisoned  # the chaos seed must actually fault something
        tracer = Tracer()
        res = mi_matrix(weights, tile=TILE, engine=_engine("thread", plan),
                        tracer=tracer,
                        policy=FaultPolicy(max_retries=1, backoff=0.01,
                                           on_fault="quarantine"))
        assert {f"tile:{q.i0}:{q.j0}" for q in res.quarantined} == poisoned
        assert tracer.counters["tasks_quarantined"] == len(poisoned)
        for q in res.quarantined:
            assert np.all(res.mi[q.i0:q.i1, q.j0:q.j1] == 0.0)
            assert np.all(res.mi[q.j0:q.j1, q.i0:q.i1] == 0.0)  # mirrored zero
        # Untouched blocks match the clean run exactly.
        mask = np.ones_like(baseline, dtype=bool)
        for q in res.quarantined:
            mask[q.i0:q.i1, q.j0:q.j1] = False
            mask[q.j0:q.j1, q.i0:q.i1] = False
        assert np.array_equal(res.mi[mask], baseline[mask])

    def test_quarantine_mode_skips_retries(self, weights):
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)
        tracer = Tracer()
        res = mi_matrix(weights, tile=TILE, engine=_engine("thread", plan),
                        tracer=tracer,
                        policy=FaultPolicy(max_retries=3, backoff=0.01,
                                           on_fault="quarantine"))
        assert res.quarantined
        assert tracer.counters.get("task_retries", 0) == 0

    def test_on_fault_raise_aborts(self, weights):
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)
        with pytest.raises(FaultToleranceExceeded) as exc:
            mi_matrix(weights, tile=TILE, engine=_engine("thread", plan),
                      policy=FaultPolicy(max_retries=1, backoff=0.01,
                                         on_fault="raise"))
        assert exc.value.quarantined

    def test_engine_fault_spans_record_quarantine(self, weights, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)
        tracer = Tracer()
        mi_matrix(weights, tile=TILE, engine=_engine("thread", plan),
                  tracer=tracer,
                  policy=FaultPolicy(max_retries=0, on_fault="quarantine"))
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        summary = fault_summary(load_events(path))
        assert summary["tasks_quarantined"] >= 1
        assert summary["engine_fault_events"] >= 1


class TestEngineFallback:
    def test_injected_engine_failures_degrade_and_recover(self, weights, baseline):
        plan = FaultPlan(seed=0, rate=0.0, engine_failures=2)
        eng = _engine("sharedmem", faults=plan)
        tracer = Tracer()
        res = mi_matrix(weights, tile=TILE, engine=eng, tracer=tracer,
                        policy=FaultPolicy(max_retries=2, backoff=0.01))
        assert np.array_equal(res.mi, baseline)
        assert tracer.counters["engine_fallbacks"] == 2  # sharedmem->process->thread

    def test_fallback_does_not_trigger_without_policy(self, weights, baseline):
        # Legacy dispatch (policy=None) never consults the fallback chain.
        res = mi_matrix(weights, tile=TILE, engine=_engine("thread"))
        assert np.array_equal(res.mi, baseline)

    def test_make_engine_fallback_flag(self, monkeypatch):
        import repro.parallel.engine as engine_mod

        def broken(*args, **kwargs):
            raise RuntimeError("no fork support")

        monkeypatch.setattr(engine_mod.ProcessEngine, "__init__", broken)
        eng = make_engine("process", fallback=True)
        assert type(eng).__name__ == "ThreadEngine"
        with pytest.raises(RuntimeError):
            make_engine("process", fallback=False)


class TestMakeEngineValidation:
    def test_unknown_kind_message(self):
        with pytest.raises(ValueError) as exc:
            make_engine("gpu")
        assert str(exc.value) == (
            "unknown engine kind 'gpu'; valid kinds: "
            "serial, thread, process, sharedmem, elastic"
        )

    def test_engine_kinds_exported(self):
        assert ENGINE_KINDS == ("serial", "thread", "process", "sharedmem",
                                "elastic")

    def test_env_hook_attaches_plan(self, monkeypatch):
        plan = FaultPlan(seed=21, rate=0.25)
        monkeypatch.setenv(REPRO_FAULTS_ENV, plan.to_env())
        eng = make_engine("thread")
        assert eng.faults is not None and eng.faults.seed == 21
        monkeypatch.delenv(REPRO_FAULTS_ENV)
        assert make_engine("thread").faults is None

    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_FAULTS_ENV, FaultPlan(seed=21).to_env())
        eng = make_engine("thread", faults=FaultPlan(seed=5))
        assert eng.faults.seed == 5


class TestCheckpointUnderFaults:
    def test_interrupt_resume_identical(self, weights, baseline, tmp_path):
        plan = _chaos_plan("crash", fork=False)
        policy = FaultPolicy(max_retries=3, backoff=0.01)
        ck = tmp_path / "ck"
        first = mi_matrix_checkpointed(
            weights, ck, tile=TILE, interrupt_after_rows=1,
            engine=_engine("thread", plan), policy=policy)
        assert first is None  # interrupted mid-run
        status = checkpoint_status(ck)
        assert 0 < status["done_rows"] < status["total_rows"]
        # Resume under a fresh plan (fresh ledger: faults fire again).
        resumed = mi_matrix_checkpointed(
            weights, ck, tile=TILE,
            engine=_engine("thread", _chaos_plan("crash", fork=False)),
            policy=policy)
        assert np.array_equal(resumed, baseline)

    def test_quarantine_persisted_in_ledger(self, weights, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)
        ck = tmp_path / "ck"
        out = mi_matrix_checkpointed(
            weights, ck, tile=TILE, engine=_engine("thread", plan),
            policy=FaultPolicy(max_retries=0, on_fault="quarantine"))
        assert out is not None
        recorded = checkpoint_status(ck)["quarantined"]
        assert recorded  # survives in the ledger on disk
        expected = {s.key for s in plan.faulted(_tiles(weights))}
        assert {f"tile:{d['i0']}:{d['j0']}" for d in recorded} == expected
        # Quarantined (never-computed) blocks are NaN in the assembled
        # matrix — not zeros masquerading as tested non-edges.  The
        # diagonal keeps the no-self-edge zero convention.
        for d in recorded:
            block = out[d["i0"]:d["i1"], d["j0"]:d["j1"]]
            i = np.arange(d["i0"], d["i1"])[:, None]
            j = np.arange(d["j0"], d["j1"])[None, :]
            assert np.all(np.isnan(block[i != j]))
            assert np.all(block[i == j] == 0.0)
            mirrored = out[d["j0"]:d["j1"], d["i0"]:d["i1"]]
            assert np.all(np.isnan(mirrored[j.T != i.T]))


class TestOutOfCoreUnderFaults:
    def test_chaos_identical_and_no_sidecar(self, weights, baseline, tmp_path):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(N_GENES, 24))
        store = build_weight_store(data, tmp_path / "w")
        clean = np.load(mi_matrix_outofcore(store, tmp_path / "clean", tile=TILE))
        out = mi_matrix_outofcore(
            store, tmp_path / "mi", tile=TILE,
            engine=_engine("thread", _chaos_plan("crash", fork=False)),
            policy=FaultPolicy(max_retries=3, backoff=0.01))
        assert np.array_equal(np.load(out), clean)
        assert not out.with_name(out.name + ".quarantine.json").exists()

    def test_sticky_faults_write_sidecar(self, weights, tmp_path):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(N_GENES, 24))
        store = build_weight_store(data, tmp_path / "w")
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)
        out = mi_matrix_outofcore(
            store, tmp_path / "mi", tile=TILE, engine=_engine("thread", plan),
            policy=FaultPolicy(max_retries=0, on_fault="quarantine"))
        sidecar = out.with_name(out.name + ".quarantine.json")
        assert sidecar.exists()
        records = json.loads(sidecar.read_text())
        assert records and all("i0" in r and "error" in r for r in records)
        mi = np.load(out)
        for r in records:
            assert np.all(mi[r["i0"]:r["i1"], r["j0"]:r["j1"]] == 0.0)


class TestDistributedRankLoss:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(20, 40))

    def test_rank_loss_bit_identical(self, data):
        base = distributed_reconstruct(data, n_ranks=4, tile=6)
        lossy = distributed_reconstruct(data, n_ranks=4, tile=6,
                                        lost_ranks=(1, 3))
        assert np.array_equal(base.mi, lossy.mi)
        assert base.threshold == lossy.threshold
        assert np.array_equal(base.network.adjacency, lossy.network.adjacency)
        assert lossy.lost_ranks == (1, 3)
        assert lossy.reassigned_tiles > 0
        assert lossy.tiles_per_rank[1] == 0 and lossy.tiles_per_rank[3] == 0

    def test_rank_loss_with_faulty_engine(self, data):
        base = distributed_reconstruct(data, n_ranks=4, tile=6)
        eng = _engine("thread", FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE,
                                          kinds=("crash",)))
        faulty = distributed_reconstruct(
            data, n_ranks=4, tile=6, lost_ranks=(2,), engine=eng,
            policy=FaultPolicy(max_retries=3, backoff=0.01))
        assert np.array_equal(base.mi, faulty.mi)
        assert faulty.quarantined == []

    def test_cannot_lose_every_rank(self, data):
        with pytest.raises(ValueError, match="at least one must survive"):
            distributed_reconstruct(data, n_ranks=2, lost_ranks=(0, 1))
        with pytest.raises(ValueError, match="out of range"):
            distributed_reconstruct(data, n_ranks=2, lost_ranks=(5,))

    def test_comm_mark_failed(self):
        from repro.cluster.comm import LockstepComm

        comm = LockstepComm(3)
        comm.mark_failed(1)
        assert comm.alive == [0, 2]
        acc = comm.allreduce([np.ones(2), None, np.ones(2)])
        assert np.array_equal(acc[0], 2 * np.ones(2))
        with pytest.raises(ValueError, match="survive"):
            comm.mark_failed(0), comm.mark_failed(2)
        with pytest.raises(ValueError, match="live contribution"):
            LockstepComm(1).allreduce([None])


class TestDriverPaths:
    """Fault policy threading through every public driver."""

    def test_auto_reconstruct_reports_quarantine(self, tmp_path):
        from repro.core.driver import auto_reconstruct
        from repro.core.pipeline import TingeConfig

        rng = np.random.default_rng(2)
        data = rng.normal(size=(16, 30))
        clean = auto_reconstruct(data, checkpoint=False)
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",))
        res = auto_reconstruct(
            data, checkpoint=False,
            config=TingeConfig(max_retries=3, on_fault="retry"),
            engine=_engine("thread", plan))
        assert np.array_equal(res.network.adjacency, clean.network.adjacency)
        assert res.quarantined == []

    def test_pipeline_config_policy(self, weights):
        from repro.core.pipeline import TingeConfig, reconstruct_network

        rng = np.random.default_rng(2)
        data = rng.normal(size=(16, 30))
        clean = reconstruct_network(data)
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",))
        res = reconstruct_network(
            data, config=TingeConfig(max_retries=3, on_fault="retry"),
            engine=_engine("thread", plan))
        assert np.array_equal(res.network.adjacency, clean.network.adjacency)
        assert res.quarantined == []

    def test_config_validates_fault_fields(self):
        from repro.core.pipeline import TingeConfig

        with pytest.raises(ValueError, match="max_retries"):
            TingeConfig(max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            TingeConfig(task_timeout=0.0)
        with pytest.raises(ValueError, match="on_fault"):
            TingeConfig(on_fault="panic")
        assert TingeConfig().fault_policy() is None
        p = TingeConfig(max_retries=2, on_fault="quarantine").fault_policy()
        assert p.max_retries == 2 and p.on_fault == "quarantine"


class TestIncrementalChaos:
    """Chaos on the sample-increment path: injected faults during the
    dirty-tile replay retry to a network bit-identical to a clean update
    (and hence to a from-scratch run on the grown dataset)."""

    @pytest.fixture(scope="class")
    def streaming(self):
        from repro.core.incremental import NetworkUpdater
        from repro.core.pipeline import TingeConfig, reconstruct_network

        rng = np.random.default_rng(5)
        n, m, dm = N_GENES, 40, 2
        full = rng.normal(size=(n, m + dm))
        for k in range(4):
            full[2 * k + 1] = full[2 * k] + 0.35 * rng.normal(size=m + dm)
        data, new = full[:, :m], full[:, m:]
        cfg = TingeConfig(n_permutations=8, n_null_pairs=40, alpha=0.05,
                          seed=3, tile=TILE, max_retries=3, on_fault="retry")
        res_old = reconstruct_network(data, config=cfg)
        res_full = reconstruct_network(full, config=cfg)

        def updater():
            return NetworkUpdater.from_result(res_old, data)

        return updater, new, res_full

    @pytest.mark.parametrize("fault", ["crash", "corrupt"])
    def test_faulted_replay_recovers_bit_identical(self, streaming, fault):
        updater, new, res_full = streaming
        plan = _chaos_plan(fault, fork=False)
        tracer = Tracer()
        u = updater()
        delta = u.add_samples(new, engine=_engine("thread", faults=plan),
                              tracer=tracer)
        assert delta is not None
        assert delta.quarantined == []
        net = u.network
        assert net.threshold == res_full.network.threshold
        assert np.array_equal(net.adjacency, res_full.network.adjacency)
        counter = ("task_retries" if fault == "crash" else "task_corruptions")
        assert tracer.counters.get(counter, 0) >= 1

    def test_env_plan_reaches_replay(self, streaming, monkeypatch):
        """REPRO_FAULTS injects into the update exactly like any other
        tile run (forked engine workers read the same env)."""
        updater, new, res_full = streaming
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",))
        monkeypatch.setenv(REPRO_FAULTS_ENV, plan.to_env())
        u = updater()
        delta = u.add_samples(new, engine=_engine("thread"))
        assert delta is not None
        net = u.network
        assert net.threshold == res_full.network.threshold
        assert np.array_equal(net.adjacency, res_full.network.adjacency)

    def test_sticky_fault_quarantines_tile_not_update(self, streaming):
        from repro.core.pipeline import TingeConfig

        updater, new, res_full = streaming
        plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("crash",),
                         max_failures=None)  # never recovers
        u = updater()
        u._config = TingeConfig(
            n_permutations=8, n_null_pairs=40, alpha=0.05, seed=3, tile=TILE,
            max_retries=1, on_fault="quarantine")
        delta = u.add_samples(new, engine=_engine("thread", faults=plan))
        # Either the poisoned tiles were among the dirty set (quarantine
        # recorded) or they were screened clean (nothing to poison);
        # both are valid — the update itself must survive.
        assert delta is not None
