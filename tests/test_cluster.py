"""Tests for repro.cluster: simulated MPI and the distributed algorithm."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.cluster.comm import LockstepComm
from repro.cluster.distributed import distributed_reconstruct
from repro.data import yeast_subset


class TestLockstepComm:
    def test_bcast_all_receive(self):
        comm = LockstepComm(4)
        out = comm.bcast(np.arange(3), root=0)
        assert len(out) == 4
        assert all(np.array_equal(o, np.arange(3)) for o in out)

    def test_scatter_by_rank(self):
        comm = LockstepComm(3)
        out = comm.scatter([1, 2, 3])
        assert out == [1, 2, 3]

    def test_scatter_wrong_count(self):
        with pytest.raises(ValueError):
            LockstepComm(3).scatter([1, 2])

    def test_gather_root_only(self):
        comm = LockstepComm(3)
        out = comm.gather([10, 20, 30], root=1)
        assert out[1] == [10, 20, 30]
        assert out[0] is None and out[2] is None

    def test_allgather(self):
        comm = LockstepComm(2)
        out = comm.allgather([np.zeros(2), np.ones(2)])
        for rank_view in out:
            assert np.array_equal(rank_view[0], np.zeros(2))
            assert np.array_equal(rank_view[1], np.ones(2))

    def test_allreduce_sum(self):
        comm = LockstepComm(4)
        parts = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(parts)
        assert all(np.array_equal(o, np.full(3, 6.0)) for o in out)

    def test_allreduce_custom_op(self):
        comm = LockstepComm(3)
        out = comm.allreduce([np.array([1.0, 5.0]), np.array([4.0, 2.0]),
                              np.array([3.0, 3.0])], op=np.maximum)
        assert np.array_equal(out[0], np.array([4.0, 5.0]))

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            LockstepComm(2).bcast(1, root=5)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            LockstepComm(0)


class TestCommMetering:
    def test_allgather_ring_volume(self):
        comm = LockstepComm(4)
        slabs = [np.zeros(100, dtype=np.float64) for _ in range(4)]
        comm.allgather(slabs)
        # Ring: (P-1) * total bytes = 3 * 4 * 800.
        assert comm.meter.volume_bytes == 3 * 4 * 800

    def test_allreduce_log_rounds(self):
        comm = LockstepComm(8)
        comm.allreduce([np.zeros(10) for _ in range(8)])
        # log2(8)=3 rounds * 8 ranks * 80 bytes.
        assert comm.meter.volume_bytes == 3 * 8 * 80

    def test_single_rank_no_allgather_volume(self):
        comm = LockstepComm(1)
        comm.allgather([np.zeros(50)])
        assert comm.meter.volume_bytes == 0.0

    def test_call_counts(self):
        comm = LockstepComm(2)
        comm.barrier()
        comm.bcast(1)
        comm.bcast(2)
        assert comm.meter.calls == {"barrier": 1, "bcast": 2}


class TestDistributedReconstruct:
    @pytest.fixture(scope="class")
    def dataset(self):
        return yeast_subset(n_genes=36, m_samples=150, seed=20)

    def test_matches_serial_pipeline(self, dataset):
        cfg = TingeConfig(n_permutations=15, n_null_pairs=50, alpha=0.01, seed=7)
        serial = reconstruct_network(dataset.expression, dataset.genes, cfg)
        dist = distributed_reconstruct(
            dataset.expression, dataset.genes, n_ranks=4,
            n_permutations=15, n_null_pairs=50, alpha=0.01, seed=7,
        )
        assert np.allclose(dist.mi, serial.mi)
        assert dist.threshold == pytest.approx(serial.network.threshold, rel=1e-9)
        assert np.array_equal(dist.network.adjacency, serial.network.adjacency)

    def test_rank_count_invariance(self, dataset):
        results = [
            distributed_reconstruct(dataset.expression, dataset.genes,
                                    n_ranks=p, n_permutations=10, seed=3)
            for p in (1, 2, 5)
        ]
        ref = results[0]
        for r in results[1:]:
            assert np.allclose(r.mi, ref.mi)
            assert r.threshold == pytest.approx(ref.threshold, rel=1e-9)

    def test_tiles_balanced_cyclically(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=4, n_permutations=5, tile=4)
        assert max(dist.tiles_per_rank) - min(dist.tiles_per_rank) <= 1
        assert sum(dist.tiles_per_rank) > 0

    def test_comm_volume_dominated_by_allgather(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=4, n_permutations=5)
        assert dist.comm_calls["allgather"] >= 1
        assert dist.comm_volume_bytes > 0

    def test_allgather_volume_matches_alpha_beta_model(self, dataset):
        """The measured allgather bytes must equal what the cluster cost
        model charges: (P-1) * n * m * b * itemsize for the weight slabs."""
        p = 4
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=p, n_permutations=5,
                                       dtype="float32")
        n, m, b = 36, 150, 10
        weight_bytes = n * m * b * 4
        # allgather volume includes the weight slabs and the (small) null
        # shares; the weights term dominates and must be present exactly.
        expected_weights = (p - 1) * weight_bytes
        assert dist.comm_volume_bytes >= expected_weights
        # Remaining volume: data scatter, MI-matrix allreduce (dense in this
        # in-process demonstrator; the real tool gathers sparse edges) and
        # the small null allgather.
        assert dist.comm_volume_bytes < expected_weights * 1.5

    def test_single_rank_equals_serial_mi(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=1, n_permutations=8, seed=1)
        from repro.core.bspline import weight_tensor
        from repro.core.discretize import rank_transform
        from repro.core.mi_matrix import mi_matrix

        w = weight_tensor(rank_transform(dataset.expression))
        assert np.allclose(dist.mi, mi_matrix(w).mi)

    def test_more_ranks_than_genes_tolerated(self):
        ds = yeast_subset(n_genes=6, m_samples=60, seed=1)
        dist = distributed_reconstruct(ds.expression, ds.genes, n_ranks=10,
                                       n_permutations=5)
        assert dist.network.n_genes == 6

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression[:1], n_ranks=2)
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression, dataset.genes, n_ranks=0)
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression, ["x"], n_ranks=2)
