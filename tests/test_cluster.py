"""Tests for repro.cluster: simulated MPI and the distributed algorithm."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.cluster.comm import CommMismatchError, LockstepComm, run_lockstep
from repro.cluster.distributed import distributed_reconstruct
from repro.data import yeast_subset


class TestLockstepComm:
    def test_bcast_all_receive(self):
        comm = LockstepComm(4)
        out = comm.bcast(np.arange(3), root=0)
        assert len(out) == 4
        assert all(np.array_equal(o, np.arange(3)) for o in out)

    def test_scatter_by_rank(self):
        comm = LockstepComm(3)
        out = comm.scatter([1, 2, 3])
        assert out == [1, 2, 3]

    def test_scatter_wrong_count(self):
        with pytest.raises(ValueError):
            LockstepComm(3).scatter([1, 2])

    def test_gather_root_only(self):
        comm = LockstepComm(3)
        out = comm.gather([10, 20, 30], root=1)
        assert out[1] == [10, 20, 30]
        assert out[0] is None and out[2] is None

    def test_allgather(self):
        comm = LockstepComm(2)
        out = comm.allgather([np.zeros(2), np.ones(2)])
        for rank_view in out:
            assert np.array_equal(rank_view[0], np.zeros(2))
            assert np.array_equal(rank_view[1], np.ones(2))

    def test_allreduce_sum(self):
        comm = LockstepComm(4)
        parts = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(parts)
        assert all(np.array_equal(o, np.full(3, 6.0)) for o in out)

    def test_allreduce_custom_op(self):
        comm = LockstepComm(3)
        out = comm.allreduce([np.array([1.0, 5.0]), np.array([4.0, 2.0]),
                              np.array([3.0, 3.0])], op=np.maximum)
        assert np.array_equal(out[0], np.array([4.0, 5.0]))

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            LockstepComm(2).bcast(1, root=5)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            LockstepComm(0)


class TestCommMetering:
    def test_allgather_ring_volume(self):
        comm = LockstepComm(4)
        slabs = [np.zeros(100, dtype=np.float64) for _ in range(4)]
        comm.allgather(slabs)
        # Ring: (P-1) * total bytes = 3 * 4 * 800.
        assert comm.meter.volume_bytes == 3 * 4 * 800

    def test_allreduce_log_rounds(self):
        comm = LockstepComm(8)
        comm.allreduce([np.zeros(10) for _ in range(8)])
        # log2(8)=3 rounds * 8 ranks * 80 bytes.
        assert comm.meter.volume_bytes == 3 * 8 * 80

    def test_single_rank_no_allgather_volume(self):
        comm = LockstepComm(1)
        comm.allgather([np.zeros(50)])
        assert comm.meter.volume_bytes == 0.0

    def test_call_counts(self):
        comm = LockstepComm(2)
        comm.barrier()
        comm.bcast(1)
        comm.bcast(2)
        assert comm.meter.calls == {"barrier": 1, "bcast": 2}

    def test_p2p_send_metered_per_peer(self):
        comm = LockstepComm(3)
        out = comm.send(np.zeros(10), src=0, dst=2)
        assert np.array_equal(out, np.zeros(10))
        assert comm.meter.volume_bytes == 80.0
        counters = comm.meter.peer_counters()
        assert counters["comm.bytes_sent{peer=rank2}"] == 80.0
        assert counters["comm.bytes_recv{peer=rank0}"] == 80.0

    def test_send_to_failed_rank_rejected(self):
        comm = LockstepComm(3)
        comm.mark_failed(1)
        with pytest.raises(ValueError, match="failed rank"):
            comm.send(1.0, src=0, dst=1)
        with pytest.raises(ValueError, match="failed rank"):
            comm.send(1.0, src=1, dst=0)


class TestLockstepEdgeCases:
    """P=1 degenerate worlds, empty arrays, dtype preservation."""

    def test_single_rank_collectives(self):
        comm = LockstepComm(1)
        assert comm.bcast(np.arange(4))[0].tolist() == [0, 1, 2, 3]
        assert comm.scatter([np.ones(2)])[0].tolist() == [1.0, 1.0]
        gathered = comm.gather([7])
        assert gathered == [[7]]
        reduced = comm.allreduce([np.full(3, 5.0)])
        assert np.array_equal(reduced[0], np.full(3, 5.0))
        # A world of one moves nothing: no wire volume for any of it.
        assert comm.meter.volume_bytes == 0.0

    def test_empty_arrays_through_collectives(self):
        comm = LockstepComm(3)
        empty = np.empty(0, dtype=np.float64)
        out = comm.allgather([empty, empty, empty])
        assert all(v.size == 0 for view in out for v in view)
        reduced = comm.allreduce([empty.copy() for _ in range(3)])
        assert reduced[0].size == 0
        assert comm.meter.volume_bytes == 0.0  # zero bytes, still counted
        assert comm.meter.calls == {"allgather": 1, "allreduce": 1}

    def test_allreduce_preserves_dtype(self):
        comm = LockstepComm(4)
        f32 = [np.ones(5, dtype=np.float32) for _ in range(4)]
        out = comm.allreduce(f32)
        assert out[0].dtype == np.float32
        assert np.array_equal(out[0], np.full(5, 4.0, dtype=np.float32))
        i64 = [np.arange(3, dtype=np.int64) for _ in range(4)]
        assert comm.allreduce(i64)[0].dtype == np.int64


class TestThreadedRunLockstep:
    """Per-rank callables: rendezvous, results, and sequence validation."""

    def test_spmd_allreduce(self):
        def rank_prog(comm):
            local = np.full(4, float(comm.rank))
            total = comm.allreduce(local)
            comm.barrier()
            return total

        results, comm = run_lockstep(3, [rank_prog] * 3)
        for r in results:
            assert np.array_equal(r, np.full(4, 3.0))  # 0+1+2
        # Metered exactly like the legacy single-driver formulation.
        assert comm.meter.calls["allreduce"] == 1
        assert comm.meter.calls["barrier"] == 1

    def test_spmd_bcast_and_gather(self):
        def rank_prog(comm):
            seed = comm.bcast(42 if comm.rank == 0 else None, root=0)
            gathered = comm.gather(seed + comm.rank, root=1)
            return gathered

        results, _ = run_lockstep(3, [rank_prog] * 3)
        assert results[1] == [42, 43, 44]
        assert results[0] is None and results[2] is None

    def test_diverged_collectives_raise(self):
        def good(comm):
            comm.allgather(comm.rank)

        def rogue(comm):
            comm.allreduce(np.zeros(2))  # different op at the same step

        with pytest.raises(CommMismatchError, match="diverged"):
            run_lockstep(2, [good, rogue])

    def test_diverged_roots_raise(self):
        def rank_prog(comm):
            comm.bcast(1, root=comm.rank)  # each rank names a different root

        with pytest.raises(CommMismatchError, match="diverged"):
            run_lockstep(2, [rank_prog] * 2)

    def test_early_finish_strands_waiters(self):
        def quitter(comm):
            return "done"  # returns without joining the collective

        def waiter(comm):
            comm.barrier()

        with pytest.raises(CommMismatchError, match="finished while"):
            run_lockstep(2, [quitter, waiter])

    def test_rank_exception_propagates(self):
        def boom(comm):
            raise RuntimeError("rank exploded")

        def waiter(comm):
            comm.barrier()  # must not deadlock waiting for the dead rank

        with pytest.raises(RuntimeError, match="rank exploded"):
            run_lockstep(2, [boom, waiter])

    def test_wrong_callable_count(self):
        with pytest.raises(ValueError, match="one callable per rank"):
            run_lockstep(3, [lambda c: None] * 2)

    def test_legacy_driver_mode_unchanged(self):
        def driver(comm):
            return comm.allreduce([np.ones(2)] * comm.n_ranks)

        results, comm = run_lockstep(4, driver)
        assert np.array_equal(results[0], np.full(2, 4.0))
        assert comm.meter.calls["allreduce"] == 1


class TestDistributedReconstruct:
    @pytest.fixture(scope="class")
    def dataset(self):
        return yeast_subset(n_genes=36, m_samples=150, seed=20)

    def test_matches_serial_pipeline(self, dataset):
        cfg = TingeConfig(n_permutations=15, n_null_pairs=50, alpha=0.01, seed=7)
        serial = reconstruct_network(dataset.expression, dataset.genes, cfg)
        dist = distributed_reconstruct(
            dataset.expression, dataset.genes, n_ranks=4,
            n_permutations=15, n_null_pairs=50, alpha=0.01, seed=7,
        )
        assert np.allclose(dist.mi, serial.mi)
        assert dist.threshold == pytest.approx(serial.network.threshold, rel=1e-9)
        assert np.array_equal(dist.network.adjacency, serial.network.adjacency)

    def test_rank_count_invariance(self, dataset):
        results = [
            distributed_reconstruct(dataset.expression, dataset.genes,
                                    n_ranks=p, n_permutations=10, seed=3)
            for p in (1, 2, 5)
        ]
        ref = results[0]
        for r in results[1:]:
            assert np.allclose(r.mi, ref.mi)
            assert r.threshold == pytest.approx(ref.threshold, rel=1e-9)

    def test_tiles_balanced_cyclically(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=4, n_permutations=5, tile=4)
        assert max(dist.tiles_per_rank) - min(dist.tiles_per_rank) <= 1
        assert sum(dist.tiles_per_rank) > 0

    def test_comm_volume_dominated_by_allgather(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=4, n_permutations=5)
        assert dist.comm_calls["allgather"] >= 1
        assert dist.comm_volume_bytes > 0

    def test_allgather_volume_matches_alpha_beta_model(self, dataset):
        """The measured allgather bytes must equal what the cluster cost
        model charges: (P-1) * n * m * b * itemsize for the weight slabs."""
        p = 4
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=p, n_permutations=5,
                                       dtype="float32")
        n, m, b = 36, 150, 10
        weight_bytes = n * m * b * 4
        # allgather volume includes the weight slabs and the (small) null
        # shares; the weights term dominates and must be present exactly.
        expected_weights = (p - 1) * weight_bytes
        assert dist.comm_volume_bytes >= expected_weights
        # Remaining volume: data scatter, MI-matrix allreduce (dense in this
        # in-process demonstrator; the real tool gathers sparse edges) and
        # the small null allgather.
        assert dist.comm_volume_bytes < expected_weights * 1.5

    def test_single_rank_equals_serial_mi(self, dataset):
        dist = distributed_reconstruct(dataset.expression, dataset.genes,
                                       n_ranks=1, n_permutations=8, seed=1)
        from repro.core.bspline import weight_tensor
        from repro.core.discretize import rank_transform
        from repro.core.mi_matrix import mi_matrix

        w = weight_tensor(rank_transform(dataset.expression))
        assert np.allclose(dist.mi, mi_matrix(w).mi)

    def test_more_ranks_than_genes_tolerated(self):
        ds = yeast_subset(n_genes=6, m_samples=60, seed=1)
        dist = distributed_reconstruct(ds.expression, ds.genes, n_ranks=10,
                                       n_permutations=5)
        assert dist.network.n_genes == 6

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression[:1], n_ranks=2)
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression, dataset.genes, n_ranks=0)
        with pytest.raises(ValueError):
            distributed_reconstruct(dataset.expression, ["x"], n_ranks=2)
