"""Tests for module enrichment and incremental network maintenance."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.analysis.enrichment import enrich_modules, regulon_annotations
from repro.analysis.modules import GeneModule, modularity_modules
from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.incremental import NetworkUpdater
from repro.core.mi_matrix import mi_matrix
from repro.core.permutation import pooled_null
from repro.data import yeast_subset
from repro.data.grn import scale_free_grn


class TestRegulonAnnotations:
    def test_categories_contain_regulator_and_targets(self):
        truth = scale_free_grn(30, n_regulators=3, seed=0)
        cats = regulon_annotations(truth, min_size=2)
        for name, members in cats.items():
            reg = name.split(":", 1)[1]
            assert reg in members
            assert len(members) >= 2

    def test_min_size_filters(self):
        truth = scale_free_grn(30, n_regulators=3, seed=0)
        small = regulon_annotations(truth, min_size=2)
        large = regulon_annotations(truth, min_size=10)
        assert len(large) <= len(small)

    def test_validation(self):
        truth = scale_free_grn(10, seed=0)
        with pytest.raises(ValueError):
            regulon_annotations(truth, min_size=0)


class TestEnrichModules:
    def test_planted_module_enriched(self):
        # A module that IS a regulon must enrich for it.
        cats = {"regulon:R": frozenset({"a", "b", "c", "d"})}
        module = GeneModule(genes=("a", "b", "c"), n_internal_edges=3,
                            mean_internal_mi=0.5)
        hits = enrich_modules([module], cats, n_genes=100, alpha=0.05)
        assert len(hits) == 1
        assert hits[0].category == "regulon:R"
        assert hits[0].pvalue < 1e-4
        assert hits[0].fold_enrichment(100) > 10

    def test_random_module_not_enriched(self):
        cats = {"c": frozenset({f"g{i}" for i in range(10)})}
        module = GeneModule(genes=("g0", "x1", "x2", "x3", "x4"),
                            n_internal_edges=4, mean_internal_mi=0.2)
        # One overlap of 5 picks from a 10/1000 category: unremarkable.
        hits = enrich_modules([module], cats, n_genes=1000, alpha=0.01)
        assert hits == []

    def test_empty_inputs(self):
        assert enrich_modules([], {"c": frozenset({"a"})}, 10) == []
        module = GeneModule(genes=("a",), n_internal_edges=0, mean_internal_mi=0)
        assert enrich_modules([module], {}, 10) == []

    def test_end_to_end_recovers_regulons(self):
        """Modules detected from reconstructed networks enrich for the true
        regulons that generated the data."""
        ds = yeast_subset(n_genes=60, m_samples=350, seed=70)
        res = reconstruct_network(ds.expression, ds.genes,
                                  TingeConfig(n_permutations=20))
        modules = modularity_modules(res.network, min_size=4)
        cats = regulon_annotations(ds.truth, min_size=4)
        hits = enrich_modules(modules, cats, n_genes=60, alpha=0.05)
        assert hits  # at least one module maps onto a true regulon
        assert hits[0].pvalue < 0.01

    def test_validation(self):
        module = GeneModule(genes=("a",), n_internal_edges=0, mean_internal_mi=0)
        with pytest.raises(ValueError):
            enrich_modules([module], {"c": frozenset("a")}, 0)
        with pytest.raises(ValueError):
            enrich_modules([module], {"c": frozenset("a")}, 10, alpha=1.0)


class TestNetworkUpdater:
    @pytest.fixture
    def state(self):
        rng = np.random.default_rng(81)
        data = rng.normal(size=(20, 100))
        w = weight_tensor(rank_transform(data))
        mi = mi_matrix(w).mi
        null = pooled_null(w, 15, 50, seed=0)
        genes = [f"g{i}" for i in range(20)]
        return data, w, mi, genes, null

    def test_add_gene_matches_full_recompute(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(5)
        new = data[3] + 0.2 * rng.normal(size=100)  # coupled to g3
        updater = NetworkUpdater(w, mi, genes, null, alpha=0.05)
        updater.add_gene("g_new", new)

        full = mi_matrix(weight_tensor(rank_transform(
            np.vstack([data, new])))).mi
        assert np.allclose(updater.mi, full, atol=1e-10)

    def test_added_coupled_gene_gets_edge(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(6)
        new = data[0] + 0.1 * rng.normal(size=100)
        updater = NetworkUpdater(w, mi, genes, null, alpha=0.05)
        updater.add_gene("twin", new)
        assert ("g0", "twin") in updater.network.edge_set()

    def test_threshold_tightens_with_more_genes(self, state):
        data, w, mi, genes, null = state
        updater = NetworkUpdater(w, mi, genes, null, alpha=0.05)
        before = updater.threshold
        updater.add_gene("extra", np.random.default_rng(7).normal(size=100))
        assert updater.threshold >= before

    def test_remove_gene(self, state):
        data, w, mi, genes, null = state
        updater = NetworkUpdater(w, mi, genes, null)
        updater.remove_gene("g7")
        assert updater.n_genes == 19
        assert "g7" not in updater.network.genes
        ref = mi_matrix(weight_tensor(rank_transform(
            np.delete(data, 7, axis=0)))).mi
        assert np.allclose(updater.mi, ref, atol=1e-10)

    def test_add_remove_roundtrip(self, state):
        data, w, mi, genes, null = state
        updater = NetworkUpdater(w, mi, genes, null)
        new = np.random.default_rng(8).normal(size=100)
        updater.add_gene("temp", new)
        updater.remove_gene("temp")
        assert np.allclose(updater.mi, mi, atol=1e-12)
        assert updater.network.genes == genes

    def test_validation(self, state):
        data, w, mi, genes, null = state
        updater = NetworkUpdater(w, mi, genes, null)
        with pytest.raises(ValueError):
            updater.add_gene("g0", data[0])  # duplicate
        with pytest.raises(ValueError):
            updater.add_gene("x", np.zeros(5))  # wrong length
        with pytest.raises(ValueError):
            updater.remove_gene("nope")
        with pytest.raises(ValueError):
            NetworkUpdater(w, mi[:5, :5], genes, null)


class TestNetworkUpdaterGrowth:
    """Geometric buffer growth: same outputs, no per-add full reallocation."""

    @pytest.fixture
    def state(self):
        rng = np.random.default_rng(91)
        data = rng.normal(size=(8, 60))
        w = weight_tensor(rank_transform(data))
        mi = mi_matrix(w).mi
        null = pooled_null(w, 10, 20, seed=0)
        return data, w, mi, [f"g{i}" for i in range(8)], null

    def test_many_adds_bit_identical_to_naive(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(17)
        updater = NetworkUpdater(w, mi, genes, null)
        snapshots = []
        for k in range(10):
            updater.add_gene(f"new{k}", rng.normal(size=60))
            snapshots.append(updater.mi)
        # Re-play with a fresh updater (fresh buffers, different capacity
        # history) and compare bit-exactly at every step.
        rng = np.random.default_rng(17)
        replay = NetworkUpdater(w, mi, genes, null)
        for k in range(10):
            replay.add_gene(f"new{k}", rng.normal(size=60))
            assert np.array_equal(replay.mi, snapshots[k])
        assert replay.n_genes == 18

    def test_capacity_grows_geometrically(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(23)
        updater = NetworkUpdater(w, mi, genes, null)
        reallocations = 0
        last_cap = updater.capacity
        for k in range(24):
            updater.add_gene(f"n{k}", rng.normal(size=60))
            if updater.capacity != last_cap:
                reallocations += 1
                assert updater.capacity >= 2 * last_cap
                last_cap = updater.capacity
        assert updater.n_genes == 32
        # 8 -> 32 genes needs O(log) growth steps, not one per add.
        assert reallocations <= 2

    def test_add_after_remove_reuses_slack(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(29)
        updater = NetworkUpdater(w, mi, genes, null)
        updater.add_gene("a", rng.normal(size=60))
        cap = updater.capacity
        updater.remove_gene("a")
        updater.add_gene("b", rng.normal(size=60))
        assert updater.capacity == cap  # no reallocation needed
        assert "b" in updater.network.genes

    def test_rejects_nonfinite_samples(self, state):
        data, w, mi, genes, null = state
        updater = NetworkUpdater(w, mi, genes, null)
        bad = np.ones(60)
        bad[3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            updater.add_gene("bad", bad)
        bad[3] = np.inf
        with pytest.raises(ValueError, match="NaN"):
            updater.add_gene("bad", bad)
        assert updater.n_genes == 8  # rejected adds leave state untouched


class TestRepeatedAddRemove:
    """Regression: repeated add/remove of the *same* gene name must leave
    the weight/entropy/MI bookkeeping exactly consistent — in particular
    removing the last-added gene twice in a row (remove, re-add, remove
    again), where a stale vacated slot could alias the next add."""

    @pytest.fixture
    def state(self):
        rng = np.random.default_rng(91)
        data = rng.normal(size=(8, 60))
        w = weight_tensor(rank_transform(data))
        mi = mi_matrix(w).mi
        null = pooled_null(w, 10, 20, seed=0)
        return data, w, mi, [f"g{i}" for i in range(8)], null

    def test_remove_last_added_twice_in_a_row(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(3)
        u = NetworkUpdater(w, mi, genes, null)
        samples = rng.normal(size=60)
        for _ in range(3):  # add -> remove, thrice, same name each time
            u.add_gene("churn", samples)
            assert u.n_genes == 9
            u.remove_gene("churn")
            assert u.n_genes == 8
        assert np.array_equal(u.mi, mi)
        assert u.network.genes == genes
        # The vacated slot holds no stale weights/entropies: a different
        # gene added now must see exactly a fresh 8-gene state.
        other = rng.normal(size=60)
        u.add_gene("fresh", other)
        ref = mi_matrix(weight_tensor(rank_transform(
            np.vstack([data, other])))).mi
        assert np.allclose(u.mi, ref, atol=1e-12)

    def test_same_name_different_samples_reuses_name_cleanly(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(5)
        u = NetworkUpdater(w, mi, genes, null)
        a, b = rng.normal(size=60), rng.normal(size=60)
        u.add_gene("x", a)
        u.remove_gene("x")
        u.add_gene("x", b)  # same name, new data: must use b, not stale a
        ref = mi_matrix(weight_tensor(rank_transform(np.vstack([data, b])))).mi
        assert np.allclose(u.mi, ref, atol=1e-12)

    def test_interleaved_churn_matches_scratch(self, state):
        data, w, mi, genes, null = state
        rng = np.random.default_rng(7)
        u = NetworkUpdater(w, mi, genes, null)
        v1, v2 = rng.normal(size=60), rng.normal(size=60)
        u.add_gene("a", v1)
        u.add_gene("b", v2)
        u.remove_gene("b")  # last-added
        u.remove_gene("a")  # new last slot, removed back-to-back
        assert u.n_genes == 8
        assert np.array_equal(u.mi, mi)
        u.add_gene("a", v2)
        ref = mi_matrix(weight_tensor(rank_transform(np.vstack([data, v2])))).mi
        assert np.allclose(u.mi, ref, atol=1e-12)

    def test_entropy_cache_tracks_live_prefix(self, state):
        """The `_n == len(_genes)` invariant plus a cleared vacated slot:
        internal caches describe exactly the live genes after churn."""
        from repro.core.entropy import marginal_entropies

        data, w, mi, genes, null = state
        rng = np.random.default_rng(11)
        u = NetworkUpdater(w, mi, genes, null)
        u.add_gene("t", rng.normal(size=60))
        u.remove_gene("t")
        u.remove_gene("g7")
        assert u._n == len(u._genes) == 7
        assert np.array_equal(u._h, marginal_entropies(u._weights))
        assert np.all(u._hbuf[u._n:] == 0.0)
        assert np.all(u._wbuf[u._n:] == 0.0)
