"""Tests for repro.analysis: accuracy scoring and graph statistics."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    ConfusionCounts,
    aupr,
    pr_curve,
    random_baseline_precision,
    score_network,
)
from repro.analysis.graphstats import (
    degree_histogram,
    power_law_exponent,
    summarize,
    top_hubs,
)
from repro.core.network import GeneNetwork
from repro.data.grn import GroundTruthNetwork


@pytest.fixture
def truth4():
    return GroundTruthNetwork(
        n_genes=4, edges=[[0, 1], [1, 2]], strengths=[1.0, 1.0],
        genes=["a", "b", "c", "d"],
    )


def net_from_edges(edges, n=4, genes=None):
    genes = genes or ["a", "b", "c", "d"]
    adj = np.zeros((n, n), dtype=bool)
    w = np.zeros((n, n))
    for i, j in edges:
        adj[i, j] = adj[j, i] = True
        w[i, j] = w[j, i] = 1.0
    return GeneNetwork(adjacency=adj, weights=w, genes=genes)


class TestConfusionCounts:
    def test_metrics(self):
        c = ConfusionCounts(tp=3, fp=1, fn=2, tn=10)
        assert c.precision == pytest.approx(0.75)
        assert c.recall == pytest.approx(0.6)
        assert c.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
        assert c.false_positive_rate == pytest.approx(1 / 11)

    def test_degenerate_zero(self):
        c = ConfusionCounts(0, 0, 0, 0)
        assert c.precision == 0.0 and c.recall == 0.0 and c.f1 == 0.0


class TestScoreNetwork:
    def test_perfect_recovery(self, truth4):
        net = net_from_edges([(0, 1), (1, 2)])
        c = score_network(net, truth4)
        assert (c.tp, c.fp, c.fn) == (2, 0, 0)
        assert c.precision == 1.0 and c.recall == 1.0

    def test_partial_recovery(self, truth4):
        net = net_from_edges([(0, 1), (2, 3)])
        c = score_network(net, truth4)
        assert (c.tp, c.fp, c.fn) == (1, 1, 1)

    def test_counts_total_pairs(self, truth4):
        net = net_from_edges([(0, 1)])
        c = score_network(net, truth4)
        assert c.tp + c.fp + c.fn + c.tn == 6  # C(4,2)

    def test_gene_count_mismatch(self, truth4):
        net = net_from_edges([(0, 1)], n=5, genes=list("abcde"))
        with pytest.raises(ValueError):
            score_network(net, truth4)


class TestPrCurve:
    def test_perfect_ranking(self, truth4):
        scores = np.zeros((4, 4))
        scores[0, 1] = scores[1, 0] = 0.9
        scores[1, 2] = scores[2, 1] = 0.8
        recall, precision = pr_curve(scores, truth4)
        assert precision[0] == 1.0 and precision[1] == 1.0
        assert recall[-1] == 1.0
        assert aupr(scores, truth4) == pytest.approx(1.0)

    def test_worst_ranking(self, truth4):
        scores = np.zeros((4, 4))
        # Rank the two non-edges highest.
        scores[0, 2] = scores[2, 0] = 0.9
        scores[0, 3] = scores[3, 0] = 0.8
        a = aupr(scores, truth4)
        assert a < 0.6

    def test_random_baseline(self, truth4):
        assert random_baseline_precision(truth4) == pytest.approx(2 / 6)

    def test_aupr_bounds(self, rng, truth4):
        s = rng.uniform(0, 1, size=(4, 4))
        s = (s + s.T) / 2
        assert 0.0 <= aupr(s, truth4) <= 1.0

    def test_curve_lengths(self, rng, truth4):
        s = rng.uniform(0, 1, size=(4, 4))
        recall, precision = pr_curve((s + s.T) / 2, truth4)
        assert recall.shape == precision.shape == (6,)


class TestGraphStats:
    def test_summarize_counts(self):
        net = net_from_edges([(0, 1), (1, 2)])
        s = summarize(net)
        assert s.n_genes == 4 and s.n_edges == 2
        assert s.n_components == 2  # {a,b,c} and {d}
        assert s.largest_component == 3
        assert s.max_degree == 2

    def test_degree_histogram(self):
        net = net_from_edges([(0, 1), (1, 2)])
        values, counts = degree_histogram(net)
        assert dict(zip(values.tolist(), counts.tolist())) == {0: 1, 1: 2, 2: 1}

    def test_top_hubs(self):
        net = net_from_edges([(0, 1), (1, 2), (1, 3)])
        hubs = top_hubs(net, 1)
        assert hubs == [("b", 3)]

    def test_power_law_range_on_scale_free(self):
        from repro.data.grn import scale_free_grn

        truth = scale_free_grn(400, n_regulators=20, mean_in_degree=2.5, seed=0)
        adj = truth.adjacency()
        net = GeneNetwork(adj, adj.astype(float), truth.genes)
        alpha = power_law_exponent(net, k_min=2)
        assert 1.2 < alpha < 4.5

    def test_power_law_nan_when_no_tail(self):
        net = net_from_edges([])
        assert np.isnan(power_law_exponent(net, k_min=1))

    def test_as_row_keys(self):
        row = summarize(net_from_edges([(0, 1)])).as_row()
        assert "edges" in row and "clustering" in row

    def test_invalid_args(self):
        net = net_from_edges([(0, 1)])
        with pytest.raises(ValueError):
            top_hubs(net, -1)
        with pytest.raises(ValueError):
            power_law_exponent(net, k_min=0)
