"""Tests for repro.bench.reporting."""

import pytest

from repro.bench.reporting import format_seconds, format_series, format_table


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(0.0005) == "0.5 ms"
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(1320) == "22 min"
        assert format_seconds(7200) == "2 h"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"machine": "phi", "minutes": 22}, {"machine": "xeon", "minutes": 44}]
        out = format_table(rows, title="E8")
        lines = out.splitlines()
        assert lines[0] == "E8"
        assert "machine" in lines[1] and "minutes" in lines[1]
        assert len(lines) == 5
        # All rows have equal width.
        assert len({len(l) for l in lines[1:]}) == 1

    def test_missing_keys_rendered_empty(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "3" in out

    def test_new_keys_rejected(self):
        with pytest.raises(ValueError):
            format_table([{"a": 1}, {"b": 2}])

    def test_empty(self):
        assert "(no rows)" in format_table([])


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series([1, 2], [10.0, 20.0], "threads", "speedup")
        assert "threads" in out and "speedup" in out
        assert "20.0" in out
