"""Tests for the adaptive MI estimator and the out-of-core driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import mi_adaptive
from repro.core.bspline import weight_tensor
from repro.core.mi import mi_bspline
from repro.core.mi_matrix import mi_matrix
from repro.core.outofcore import (
    build_weight_store,
    mi_matrix_outofcore,
    open_weight_store,
)


class TestMiAdaptive:
    def test_independent_near_zero(self, rng):
        x = rng.normal(size=600)
        z = rng.normal(size=600)
        assert mi_adaptive(x, z) < 0.05

    def test_linear_dependence_close_to_truth(self, rng):
        # Bivariate normal with known MI = -0.5 ln(1 - rho^2).
        x = rng.normal(size=2000)
        y = x + 0.3 * rng.normal(size=2000)
        rho = 1 / np.sqrt(1 + 0.09)
        truth = -0.5 * np.log(1 - rho**2)
        est = mi_adaptive(x, y)
        assert truth * 0.5 < est < truth * 1.3

    def test_detects_quadratic(self, rng):
        x = rng.normal(size=800)
        q = x**2 + 0.1 * rng.normal(size=800)
        assert mi_adaptive(x, q) > 0.5

    def test_monotone_invariance(self, rng):
        x = rng.normal(size=400)
        y = x + 0.5 * rng.normal(size=400)
        assert mi_adaptive(x, y) == pytest.approx(
            mi_adaptive(np.exp(x), y**3), rel=1e-12
        )

    def test_symmetry(self, rng):
        x = rng.normal(size=300)
        y = x + rng.normal(size=300)
        assert mi_adaptive(x, y) == pytest.approx(mi_adaptive(y, x), rel=0.2)

    def test_ordering_matches_bspline(self, rng):
        x = rng.normal(size=500)
        noise = rng.normal(size=500)
        strong = x + 0.2 * noise
        weak = x + 2.0 * noise
        assert mi_adaptive(x, strong) > mi_adaptive(x, weak)
        assert mi_bspline(x, strong) > mi_bspline(x, weak)

    def test_stricter_significance_coarser(self, rng):
        x = rng.normal(size=500)
        y = x + 0.5 * rng.normal(size=500)
        loose = mi_adaptive(x, y, significance=0.10)
        strict = mi_adaptive(x, y, significance=0.001)
        assert loose >= strict - 0.05  # finer partition captures >= info

    def test_validation(self, rng):
        x = rng.normal(size=50)
        with pytest.raises(ValueError):
            mi_adaptive(x, x, significance=0.2)
        with pytest.raises(ValueError):
            mi_adaptive(x, x, min_cell=2)
        with pytest.raises(ValueError):
            mi_adaptive(x, rng.normal(size=49))
        with pytest.raises(ValueError):
            mi_adaptive(x, x, min_depth=20, max_depth=10)
        with pytest.raises(ValueError):
            mi_adaptive(np.zeros(4), np.zeros(4), min_cell=8)

    @given(seed=st.integers(0, 60), m=st.integers(50, 300))
    @settings(max_examples=20, deadline=None)
    def test_nonnegative_property(self, seed, m):
        g = np.random.default_rng(seed)
        assert mi_adaptive(g.normal(size=m), g.normal(size=m)) >= 0.0


class TestOutOfCore:
    @pytest.fixture(scope="class")
    def data(self):
        gen = np.random.default_rng(77)
        return gen.normal(size=(50, 120))

    def test_store_roundtrip(self, data, tmp_path):
        path = build_weight_store(data, tmp_path / "w", gene_block=16)
        store = open_weight_store(path)
        ref = weight_tensor(data, dtype=np.float32)
        assert store.shape == ref.shape
        assert np.allclose(np.asarray(store), ref)

    def test_block_size_invariance(self, data, tmp_path):
        a = open_weight_store(build_weight_store(data, tmp_path / "a", gene_block=7))
        b = open_weight_store(build_weight_store(data, tmp_path / "b", gene_block=512))
        assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_matches_in_memory_matrix(self, data, tmp_path):
        wpath = build_weight_store(data, tmp_path / "w", dtype="float64")
        out = mi_matrix_outofcore(wpath, tmp_path / "mi", tile=8)
        ooc = np.load(out)
        ref = mi_matrix(weight_tensor(data, dtype=np.float64), tile=8).mi
        assert np.allclose(ooc, ref, atol=1e-12)

    def test_output_symmetric_zero_diagonal(self, data, tmp_path):
        wpath = build_weight_store(data, tmp_path / "w2")
        out = mi_matrix_outofcore(wpath, tmp_path / "mi2", tile=16)
        mi = np.load(out, mmap_mode="r")
        mi = np.asarray(mi)
        assert np.array_equal(mi, mi.T)
        assert np.all(np.diag(mi) == 0.0)

    def test_npy_suffix_enforced(self, data, tmp_path):
        path = build_weight_store(data, tmp_path / "weights.bin")
        assert path.suffix == ".npy"

    def test_validation(self, tmp_path, rng):
        with pytest.raises(ValueError):
            build_weight_store(rng.normal(size=10), tmp_path / "w")
        with pytest.raises(ValueError):
            build_weight_store(rng.normal(size=(3, 10)), tmp_path / "w", gene_block=0)
        one_gene = build_weight_store(rng.normal(size=(1, 20)), tmp_path / "one")
        with pytest.raises(ValueError):
            mi_matrix_outofcore(one_gene, tmp_path / "mi")
