"""Tests for repro.stats.histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.histogram import bin_indices, histogram1d, histogram2d, joint_counts


class TestBinIndices:
    def test_uniform_assignment(self):
        x = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        idx = bin_indices(x, 4, lo=0.0, hi=1.0)
        assert idx.tolist() == [0, 1, 2, 3, 3]

    def test_max_in_last_bin(self):
        x = np.linspace(0, 1, 11)
        assert bin_indices(x, 10)[-1] == 9

    def test_constant_vector(self):
        assert np.all(bin_indices(np.full(5, 3.0), 8) == 0)

    def test_matches_numpy_histogram(self, rng):
        x = rng.normal(size=500)
        counts, _ = np.histogram(x, bins=12)
        mine = np.bincount(bin_indices(x, 12), minlength=12)
        assert np.array_equal(counts, mine)

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            bin_indices(np.array([1.0]), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            bin_indices(np.zeros((2, 2)), 4)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            bin_indices(np.array([1.0]), 4, lo=2.0, hi=1.0)


class TestHistogram1d:
    def test_density_sums_to_one(self, rng):
        h = histogram1d(rng.normal(size=300), 10)
        assert h.sum() == pytest.approx(1.0)

    def test_counts_mode(self, rng):
        h = histogram1d(rng.normal(size=300), 10, density=False)
        assert h.sum() == 300

    @given(
        x=hnp.arrays(np.float64, st.integers(2, 100),
                     elements=st.floats(-100, 100)),
        bins=st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_total_mass_property(self, x, bins):
        h = histogram1d(x, bins)
        assert h.sum() == pytest.approx(1.0)
        assert (h >= 0).all()


class TestJointCounts:
    def test_simple(self):
        ix = np.array([0, 0, 1, 1])
        iy = np.array([0, 1, 0, 1])
        j = joint_counts(ix, iy, 2, 2)
        assert np.array_equal(j, np.ones((2, 2)))

    def test_marginals_match_bincounts(self, rng):
        ix = rng.integers(0, 5, size=200)
        iy = rng.integers(0, 7, size=200)
        j = joint_counts(ix, iy, 5, 7)
        assert np.array_equal(j.sum(axis=1), np.bincount(ix, minlength=5))
        assert np.array_equal(j.sum(axis=0), np.bincount(iy, minlength=7))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            joint_counts(np.array([0]), np.array([0, 1]), 2, 2)


class TestHistogram2d:
    def test_density(self, rng):
        j = histogram2d(rng.normal(size=400), rng.normal(size=400), 8)
        assert j.sum() == pytest.approx(1.0)
        assert j.shape == (8, 8)

    def test_matches_numpy(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        mine = histogram2d(x, y, 6, density=False)
        ref, _, _ = np.histogram2d(x, y, bins=6)
        assert np.array_equal(mine, ref)

    def test_identical_vectors_diagonal(self, rng):
        x = rng.normal(size=100)
        j = histogram2d(x, x, 5, density=False)
        assert j.sum() == np.trace(j)  # all mass on the diagonal
