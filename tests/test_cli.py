"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.network import GeneNetwork
from repro.data.io import load_dataset, read_edge_list


@pytest.fixture
def dataset_npz(tmp_path):
    path = tmp_path / "ds.npz"
    rc = main(["generate", "--genes", "30", "--samples", "120",
               "--seed", "3", "--out", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_npz_roundtrip(self, dataset_npz):
        ds = load_dataset(dataset_npz)
        assert ds.expression.shape == (30, 120)
        assert ds.truth is not None

    def test_tsv_output(self, tmp_path, capsys):
        path = tmp_path / "ds.tsv"
        rc = main(["generate", "--genes", "10", "--samples", "20", "--out", str(path)])
        assert rc == 0
        assert "wrote 10 genes" in capsys.readouterr().out
        assert path.read_text().startswith("gene\t")

    def test_bad_extension(self, tmp_path, capsys):
        rc = main(["generate", "--out", str(tmp_path / "ds.csv")])
        assert rc == 2
        assert "unsupported output format" in capsys.readouterr().err

    def test_presets(self, tmp_path):
        for preset in ("yeast", "microarray"):
            rc = main(["generate", "--preset", preset, "--genes", "20",
                       "--samples", "30", "--out", str(tmp_path / f"{preset}.npz")])
            assert rc == 0

    def test_reproducible(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for p in (a, b):
            main(["generate", "--genes", "15", "--samples", "25",
                  "--seed", "9", "--out", str(p)])
        assert np.array_equal(load_dataset(a).expression, load_dataset(b).expression)


class TestReconstruct:
    def test_end_to_end(self, dataset_npz, tmp_path, capsys):
        edges = tmp_path / "edges.tsv"
        net = tmp_path / "net.npz"
        rc = main(["reconstruct", str(dataset_npz), "--out", str(edges),
                   "--network-out", str(net), "--permutations", "15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edges in" in out
        parsed = read_edge_list(edges)
        loaded = GeneNetwork.load(net)
        assert len(parsed) == loaded.n_edges

    def test_tsv_input(self, tmp_path):
        src = tmp_path / "ds.tsv"
        main(["generate", "--genes", "12", "--samples", "60", "--out", str(src)])
        edges = tmp_path / "edges.tsv"
        rc = main(["reconstruct", str(src), "--out", str(edges),
                   "--permutations", "10"])
        assert rc == 0
        assert edges.exists()

    def test_dpi_prunes(self, dataset_npz, tmp_path):
        raw = tmp_path / "raw.tsv"
        pruned = tmp_path / "pruned.tsv"
        main(["reconstruct", str(dataset_npz), "--out", str(raw), "--seed", "1"])
        main(["reconstruct", str(dataset_npz), "--out", str(pruned),
              "--seed", "1", "--dpi", "0.1"])
        assert len(read_edge_list(pruned)) <= len(read_edge_list(raw))

    def test_thread_engine(self, dataset_npz, tmp_path):
        edges = tmp_path / "edges.tsv"
        rc = main(["reconstruct", str(dataset_npz), "--out", str(edges),
                   "--engine", "thread", "--workers", "2", "--permutations", "10"])
        assert rc == 0

    def test_missing_input(self, tmp_path, capsys):
        rc = main(["reconstruct", str(tmp_path / "nope.tsv"),
                   "--out", str(tmp_path / "e.tsv")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_format(self, tmp_path, capsys):
        bad = tmp_path / "x.csv"
        bad.write_text("hi")
        rc = main(["reconstruct", str(bad), "--out", str(tmp_path / "e.tsv")])
        assert rc == 2


class TestAnalyze:
    def test_with_truth(self, dataset_npz, tmp_path, capsys):
        net = tmp_path / "net.npz"
        main(["reconstruct", str(dataset_npz), "--out", str(tmp_path / "e.tsv"),
              "--network-out", str(net), "--permutations", "15"])
        capsys.readouterr()
        rc = main(["analyze", str(net), "--truth", str(dataset_npz), "--hubs", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out and "hubs:" in out

    def test_without_truth(self, dataset_npz, tmp_path, capsys):
        net = tmp_path / "net.npz"
        main(["reconstruct", str(dataset_npz), "--out", str(tmp_path / "e.tsv"),
              "--network-out", str(net), "--permutations", "15"])
        capsys.readouterr()
        rc = main(["analyze", str(net)])
        assert rc == 0
        assert "accuracy" not in capsys.readouterr().out

    def test_missing_network(self, tmp_path, capsys):
        rc = main(["analyze", str(tmp_path / "nope.npz")])
        assert rc == 2

    def test_truth_without_ground_truth(self, tmp_path, capsys):
        # A TSV-generated dataset reloaded as npz without truth.
        src = tmp_path / "ds.tsv"
        main(["generate", "--genes", "10", "--samples", "40", "--out", str(src)])
        from repro.data import read_expression_tsv, save_dataset

        ds = read_expression_tsv(src)
        truthless = tmp_path / "truthless.npz"
        save_dataset(ds, truthless)
        net = tmp_path / "net.npz"
        main(["reconstruct", str(src), "--out", str(tmp_path / "e.tsv"),
              "--network-out", str(net), "--permutations", "10"])
        capsys.readouterr()
        rc = main(["analyze", str(net), "--truth", str(truthless)])
        assert rc == 2


class TestSimulate:
    def test_table_printed(self, capsys):
        rc = main(["simulate", "--genes", "15575", "--samples", "3137"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Xeon Phi 5110P" in out
        assert "Blue Gene/L" in out

    def test_custom_threads(self, capsys):
        rc = main(["simulate", "--genes", "1000", "--threads", "16"])
        assert rc == 0
        assert "16" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("generate", "reconstruct", "analyze", "simulate"):
            # parse_args on each subcommand's --help would exit; just check
            # the choices are present.
            assert cmd in parser._subparsers._group_actions[0].choices
