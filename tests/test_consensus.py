"""Tests for repro.core.consensus: bootstrap edge stability."""

import numpy as np
import pytest

from repro import TingeConfig
from repro.core.consensus import ConsensusResult, bootstrap_networks, consensus_network


@pytest.fixture(scope="module")
def planted_data():
    rng = np.random.default_rng(40)
    x = rng.normal(size=200)
    data = np.vstack([x, x + 0.1 * rng.normal(size=200), rng.normal(size=(4, 200))])
    return data, list("abcdef")


@pytest.fixture(scope="module")
def consensus(planted_data):
    data, genes = planted_data
    return bootstrap_networks(
        data, genes,
        config=TingeConfig(n_permutations=15, alpha=0.05),
        n_rounds=8, seed=0,
    )


class TestBootstrapNetworks:
    def test_frequency_bounds(self, consensus):
        assert consensus.frequency.min() >= 0.0
        assert consensus.frequency.max() <= 1.0
        assert consensus.n_rounds == 8

    def test_frequency_symmetric_zero_diagonal(self, consensus):
        assert np.array_equal(consensus.frequency, consensus.frequency.T)
        assert np.all(np.diag(consensus.frequency) == 0.0)

    def test_planted_edge_fully_stable(self, consensus):
        assert consensus.frequency[0, 1] == 1.0

    def test_noise_pairs_unstable(self, consensus):
        # Pairs among the independent genes (2..5) should rarely appear.
        block = consensus.frequency[2:, 2:]
        assert block.max() <= 0.5

    def test_reproducible(self, planted_data):
        data, genes = planted_data
        a = bootstrap_networks(data, genes, TingeConfig(n_permutations=10),
                               n_rounds=3, seed=5)
        b = bootstrap_networks(data, genes, TingeConfig(n_permutations=10),
                               n_rounds=3, seed=5)
        assert np.array_equal(a.frequency, b.frequency)

    def test_validation(self, planted_data):
        data, genes = planted_data
        with pytest.raises(ValueError):
            bootstrap_networks(data, genes, n_rounds=0)
        with pytest.raises(ValueError):
            bootstrap_networks(data[0], genes)


class TestConsensusNetwork:
    def test_threshold_filters(self, consensus):
        strict = consensus_network(consensus, min_frequency=1.0)
        loose = consensus_network(consensus, min_frequency=0.25)
        assert strict.n_edges <= loose.n_edges
        assert strict.adjacency[0, 1]

    def test_weights_are_mean_mi(self, consensus):
        net = consensus_network(consensus, min_frequency=0.5)
        assert np.array_equal(net.weights, consensus.mean_mi)

    def test_stable_edges_sorted(self, consensus):
        edges = consensus.stable_edges(min_frequency=0.2)
        freqs = [f for _, _, f in edges]
        assert freqs == sorted(freqs, reverse=True)
        assert edges[0][:2] == ("a", "b")

    def test_validation(self, consensus):
        with pytest.raises(ValueError):
            consensus_network(consensus, min_frequency=0.0)
        with pytest.raises(ValueError):
            consensus.stable_edges(min_frequency=2.0)
