"""Tests for repro.core.checkpoint: resumable all-pairs runs."""

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.checkpoint import checkpoint_status, mi_matrix_checkpointed
from repro.core.mi_matrix import mi_matrix


@pytest.fixture(scope="module")
def weights():
    gen = np.random.default_rng(91)
    return weight_tensor(gen.normal(size=(30, 80)))


class TestCheckpointedRun:
    def test_matches_plain_driver(self, weights, tmp_path):
        mi = mi_matrix_checkpointed(weights, tmp_path / "ck", tile=8)
        ref = mi_matrix(weights, tile=8).mi
        assert np.allclose(mi, ref)

    def test_interrupt_and_resume(self, weights, tmp_path):
        ck = tmp_path / "ck"
        # First invocation dies after 2 rows.
        out = mi_matrix_checkpointed(weights, ck, tile=8, interrupt_after_rows=2)
        assert out is None
        status = checkpoint_status(ck)
        assert status["done_rows"] == 2
        assert status["total_rows"] == 4  # ceil(30/8)
        # Resume completes and matches the reference.
        mi = mi_matrix_checkpointed(weights, ck, tile=8)
        assert np.allclose(mi, mi_matrix(weights, tile=8).mi)

    def test_resume_recomputes_nothing(self, weights, tmp_path, monkeypatch):
        ck = tmp_path / "ck"
        mi_matrix_checkpointed(weights, ck, tile=8)  # complete run

        def boom(*a, **k):  # resume must not call the kernel at all
            raise AssertionError("tile recomputed on resume")

        import repro.core.checkpoint as mod

        monkeypatch.setattr(mod, "compute_tile", boom)
        mi = mi_matrix_checkpointed(weights, ck, tile=8)
        assert np.allclose(mi, mi_matrix(weights, tile=8).mi)

    def test_rejects_different_data(self, weights, tmp_path):
        ck = tmp_path / "ck"
        mi_matrix_checkpointed(weights, ck, tile=8, interrupt_after_rows=1)
        other = weight_tensor(np.random.default_rng(5).normal(size=(30, 80)))
        with pytest.raises(ValueError, match="different data"):
            mi_matrix_checkpointed(other, ck, tile=8)

    def test_rejects_different_tile(self, weights, tmp_path):
        ck = tmp_path / "ck"
        mi_matrix_checkpointed(weights, ck, tile=8, interrupt_after_rows=1)
        with pytest.raises(ValueError, match="tile"):
            mi_matrix_checkpointed(weights, ck, tile=16)

    def test_status_of_fresh_directory(self, tmp_path):
        assert checkpoint_status(tmp_path / "nothing") == {}

    def test_multiple_interruptions(self, weights, tmp_path):
        ck = tmp_path / "ck"
        while mi_matrix_checkpointed(weights, ck, tile=8,
                                     interrupt_after_rows=1) is None:
            pass
        mi = mi_matrix_checkpointed(weights, ck, tile=8)
        assert np.allclose(mi, mi_matrix(weights, tile=8).mi)

    def test_validation(self, weights, tmp_path):
        with pytest.raises(ValueError):
            mi_matrix_checkpointed(weights[0], tmp_path / "x")
