"""Tests for repro.stats.quantile."""

import numpy as np
import pytest

from repro.stats.quantile import empirical_quantile, upper_tail_threshold


class TestEmpiricalQuantile:
    def test_median_of_odd(self):
        assert empirical_quantile(np.array([1.0, 2.0, 3.0]), 0.5) == 2.0

    def test_higher_interpolation_conservative(self):
        s = np.array([0.0, 1.0])
        assert empirical_quantile(s, 0.5) == 1.0  # 'higher', not 0.5

    def test_extremes(self):
        s = np.arange(10, dtype=float)
        assert empirical_quantile(s, 0.0) == 0.0
        assert empirical_quantile(s, 1.0) == 9.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            empirical_quantile(np.array([]), 0.5)
        with pytest.raises(ValueError):
            empirical_quantile(np.array([1.0]), 1.5)


class TestUpperTailThreshold:
    def test_tail_probability_respected(self, rng):
        null = rng.normal(size=10_000)
        thr = upper_tail_threshold(null, alpha=0.05, n_tests=1, correction="none")
        assert (null >= thr).mean() <= 0.05

    def test_bonferroni_tightens(self, rng):
        null = rng.normal(size=10_000)
        t1 = upper_tail_threshold(null, 0.05, n_tests=1, correction="none")
        t2 = upper_tail_threshold(null, 0.05, n_tests=10, correction="bonferroni")
        assert t2 >= t1

    def test_saturates_at_max_when_under_resolved(self, rng):
        null = rng.normal(size=100)
        thr = upper_tail_threshold(null, 0.05, n_tests=10**6)
        assert thr == null.max()

    def test_no_correction_ignores_n_tests(self, rng):
        null = rng.normal(size=1000)
        a = upper_tail_threshold(null, 0.05, n_tests=1, correction="none")
        b = upper_tail_threshold(null, 0.05, n_tests=999, correction="none")
        assert a == b

    def test_invalid_args(self, rng):
        null = rng.normal(size=10)
        with pytest.raises(ValueError):
            upper_tail_threshold(null, 0.0, 1)
        with pytest.raises(ValueError):
            upper_tail_threshold(null, 0.05, 0)
        with pytest.raises(ValueError):
            upper_tail_threshold(null, 0.05, 1, correction="fdr")
        with pytest.raises(ValueError):
            upper_tail_threshold(np.array([]), 0.05, 1)
