"""Tests for the elastic backend: task graph, engine, kill+join recovery.

The task-graph layer is pure bookkeeping and is tested without any I/O.
Engine protocol tests run workers as *threads* inside this process
(``worker_main`` against a ``spawn=False`` engine) so they are fast and
can use test-module task functions.  The membership-churn test uses real
``repro worker`` subprocesses, SIGKILLs one mid-run and hot-joins
another, and asserts the matrix stays bit-identical to serial — the
PR's headline guarantee.
"""

import functools
import operator
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster.elastic import ElasticEngine, worker_main
from repro.cluster.taskgraph import (
    TaskGraph,
    TileTask,
    compile_items,
    compile_plan,
    tile_shards,
)
from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.exec import DenseSink, TensorSource, plan_tiles, run_tile_plan
from repro.core.tiling import Tile
from repro.data import yeast_subset


# ---------------------------------------------------------------------------
# Task graph (no sockets, no processes)
# ---------------------------------------------------------------------------


class TestTileShards:
    def test_aligned_diagonal_tile_hits_one_shard(self):
        t = Tile(i0=8, i1=16, j0=8, j1=16)
        assert tile_shards(t, shard=8) == (1,)

    def test_off_diagonal_tile_hits_both_block_rows(self):
        t = Tile(i0=0, i1=8, j0=16, j1=24)
        assert tile_shards(t, shard=8) == (0, 2)

    def test_unaligned_tile_spans_shards(self):
        t = Tile(i0=6, i1=10, j0=6, j1=10)
        assert tile_shards(t, shard=8) == (0, 1)


class TestTaskGraph:
    def _graph(self, shards_by_task):
        return TaskGraph(tasks=[
            TileTask(index=i, item=i, shards=s)
            for i, s in enumerate(shards_by_task)
        ])

    def test_next_for_follows_queue_order_without_cache(self):
        g = self._graph([(0,), (1,), (2,)])
        assert g.next_for("w0").index == 0
        assert g.next_for("w1").index == 1
        assert g.locality_hits == 0

    def test_next_for_prefers_cached_shards(self):
        g = self._graph([(0,), (1,), (1,)])
        # w0 already holds shard 1: it should skip the head task.
        task = g.next_for("w0", cached_shards={1})
        assert task.index == 1
        assert g.locality_hits == 1

    def test_locality_window_is_bounded(self):
        shards = [(0,)] * 40 + [(9,)]
        g = TaskGraph(tasks=[TileTask(index=i, item=i, shards=s)
                             for i, s in enumerate(shards)],
                      locality_window=8)
        # The matching task sits beyond the window: take the head instead.
        assert g.next_for("w0", cached_shards={9}).index == 0

    def test_complete_and_done(self):
        g = self._graph([(), ()])
        t0 = g.next_for("w0")
        t1 = g.next_for("w0")
        assert not g.done()
        g.complete(t0.index)
        g.complete(t1.index)
        assert g.done()
        assert g.n_done == 2
        assert g.owners() == {"w0": 2}

    def test_complete_not_running_raises(self):
        g = self._graph([()])
        with pytest.raises(KeyError):
            g.complete(0)

    def test_release_worker_requeues_in_flight_at_front(self):
        g = self._graph([(), (), (), ()])
        g.next_for("dead")   # index 0
        g.next_for("alive")  # index 1
        g.next_for("dead")   # index 2
        released = g.release_worker("dead")
        assert sorted(t.index for t in released) == [0, 2]
        assert g.reassigned == 2
        # Released tasks come back before the untouched tail (index 3).
        assert g.next_for("w2").index == 0
        assert g.next_for("w2").index == 2
        assert g.next_for("w2").index == 3

    def test_duplicate_result_after_reassignment_is_ignored(self):
        g = self._graph([()])
        g.next_for("w0")
        g.release_worker("w0")       # w0 presumed dead
        g.next_for("w1")             # reassigned
        g.complete(0)                # w1's result commits
        assert g.complete(0).state == "done"  # late w0 duplicate: no-op

    def test_cancel_pending_terminates_dispatch(self):
        g = self._graph([(), (), ()])
        g.next_for("w0")
        g.cancel_pending()
        assert g.idle()
        assert not g.done()          # the running task is still out
        g.complete(0)
        assert g.done()

    def test_compile_plan_carries_locality_hints(self):
        ds = yeast_subset(n_genes=16, m_samples=40, seed=0)
        w = weight_tensor(rank_transform(ds.expression))
        plan = plan_tiles(TensorSource(w), tile=8)
        g = compile_plan(plan)
        assert g.n_tasks == plan.n_tiles
        assert all(t.shards for t in g.tasks)
        # Items are tile indices in the plan's dispatch order.
        assert sorted(t.item for t in g.tasks) == list(range(plan.n_tiles))

    def test_compile_items_plain_list(self):
        g = compile_items(["a", "b"])
        assert [t.item for t in g.tasks] == ["a", "b"]
        assert all(t.shards == () for t in g.tasks)


# ---------------------------------------------------------------------------
# Engine protocol over in-thread workers (fast: no subprocess spawn)
# ---------------------------------------------------------------------------


@pytest.fixture
def thread_engine():
    """An ElasticEngine whose 2 workers are threads in this process."""
    eng = ElasticEngine(n_workers=2, spawn=False, heartbeat=0.5)
    threads = [
        threading.Thread(
            target=worker_main,
            args=(eng.coordinator.host, eng.coordinator.port),
            kwargs={"name": f"t{i}"}, daemon=True)
        for i in range(2)
    ]
    for t in threads:
        t.start()
    eng.coordinator.wait_for_workers(2, timeout=10)
    yield eng
    eng.close()
    for t in threads:
        t.join(timeout=5)


class TestElasticEngine:
    def test_map_preserves_order(self, thread_engine):
        out = thread_engine.map(functools.partial(operator.mul, 3),
                                list(range(10)))
        assert out == [3 * i for i in range(10)]

    def test_map_strict_failure_raises(self, thread_engine):
        with pytest.raises(RuntimeError, match="elastic task 2 failed"):
            thread_engine.map(functools.partial(operator.truediv, 1.0),
                              [1, 2, 0, 4])

    def test_map_supervised_isolates_failures(self, thread_engine):
        results, failures = thread_engine.map_supervised(
            functools.partial(operator.truediv, 12.0), [1, 0, 3, 0, 6])
        assert list(failures) == [1, 3]
        assert all("ZeroDivisionError" in e for e in failures.values())
        assert results[0] == 12.0 and results[2] == 4.0 and results[4] == 2.0

    def test_unpicklable_task_rejected(self, thread_engine):
        with pytest.raises(TypeError, match="not picklable"):
            thread_engine.map(lambda x: x, [1])

    def test_empty_map(self, thread_engine):
        assert thread_engine.map(functools.partial(operator.mul, 2), []) == []

    def test_traffic_metered_per_worker(self, thread_engine):
        thread_engine.map(functools.partial(operator.mul, 2), list(range(6)))
        counters = thread_engine.meter.peer_counters()
        sent = [k for k in counters if k.startswith("comm.bytes_sent{peer=w")]
        assert len(sent) >= 2  # both workers were fed
        assert all(counters[k] > 0 for k in sent)

    def test_n_workers_tracks_membership(self, thread_engine):
        assert thread_engine.n_workers == 2

    def test_make_engine_wires_elastic(self):
        from repro.parallel.engine import engine_kind, make_engine

        eng = make_engine("elastic", n_workers=1, spawn=False)
        try:
            assert engine_kind(eng) == "elastic"
            assert eng.in_process is False
        finally:
            eng.close()


# ---------------------------------------------------------------------------
# Real subprocesses: bit-identity through membership churn
# ---------------------------------------------------------------------------


def _serial_matrix(plan_args):
    source, tile = plan_args
    plan = plan_tiles(source, tile=tile)
    return run_tile_plan(plan, source, DenseSink(source.n_genes), engine=None)


class TestKillAndJoin:
    def test_matrix_bit_identical_through_kill_and_join(self):
        ds = yeast_subset(n_genes=48, m_samples=60, seed=3)
        w = weight_tensor(rank_transform(ds.expression))
        source = TensorSource(w)
        reference = _serial_matrix((source, 8))

        pids = {}
        state = {"results": 0, "killed": None, "joined": None}

        def on_event(kind, info):
            eng = info["engine"]
            if kind == "join":
                pids[info["worker"]] = info["message"].get("pid")
                return
            if kind != "result":
                return
            state["results"] += 1
            if state["results"] >= 3 and state["killed"] is None:
                # SIGKILL a *busy* worker so its in-flight tile must be
                # reassigned (the worker that just reported is idle now).
                for wid, wrec in list(eng.coordinator.workers.items()):
                    if wrec.task is not None and pids.get(wid):
                        os.kill(pids[wid], signal.SIGKILL)
                        state["killed"] = wid
                        break
            if state["results"] >= 6 and state["joined"] is None:
                known = set(eng.coordinator.workers)
                eng.spawn_worker()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    new = set(eng.coordinator.workers) - known
                    if new:
                        state["joined"] = new.pop()
                        return
                    time.sleep(0.05)
                raise AssertionError("replacement worker never joined")

        eng = ElasticEngine(n_workers=3, heartbeat=1.0, on_event=on_event)
        try:
            plan = plan_tiles(source, tile=8)
            out = run_tile_plan(plan, source, DenseSink(source.n_genes),
                                engine=eng)
        finally:
            eng.close()

        assert state["killed"] is not None, "no busy worker was ever killed"
        assert state["joined"] is not None
        graph = eng.last_graph
        assert graph.reassigned >= 1          # the killed worker's tile moved
        owners = graph.owners()
        assert state["joined"] in owners       # the hot-joined worker worked
        assert np.array_equal(out, reference)  # bit-identical despite churn


class TestDistributedElasticBackend:
    def test_elastic_backend_matches_lockstep(self):
        from repro.cluster.distributed import distributed_reconstruct

        ds = yeast_subset(n_genes=16, m_samples=40, seed=1)
        kwargs = dict(n_ranks=3, n_permutations=4, tile=6, seed=5)
        ref = distributed_reconstruct(ds.expression, ds.genes, **kwargs)
        dist = distributed_reconstruct(ds.expression, ds.genes,
                                       backend="elastic", **kwargs)
        assert np.array_equal(dist.mi, ref.mi)
        assert dist.threshold == ref.threshold
        assert np.array_equal(dist.network.adjacency, ref.network.adjacency)
        assert sum(dist.tiles_per_rank) == sum(ref.tiles_per_rank)
        assert dist.comm_volume_bytes > 0

    def test_elastic_backend_validation(self):
        from repro.cluster.distributed import distributed_reconstruct

        ds = yeast_subset(n_genes=8, m_samples=30, seed=1)
        with pytest.raises(ValueError, match="lockstep simulation knob"):
            distributed_reconstruct(ds.expression, ds.genes, n_ranks=3,
                                    backend="elastic", lost_ranks=[1])
        with pytest.raises(ValueError, match="builds its own engine"):
            distributed_reconstruct(ds.expression, ds.genes, n_ranks=3,
                                    backend="elastic", engine=object())
        with pytest.raises(ValueError, match="backend"):
            distributed_reconstruct(ds.expression, ds.genes, n_ranks=3,
                                    backend="carrier-pigeon")
