"""Tests for repro.core.mi: kernel correctness and estimator behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bspline import BsplineBasis, weight_tensor
from repro.core.entropy import marginal_entropies
from repro.core.mi import (
    joint_probs_pair,
    joint_probs_tile,
    mi_bspline,
    mi_bspline_pair,
    mi_from_joint,
    mi_histogram_pair,
    mi_kraskov,
    mi_tile,
)
from repro.stats.histogram import histogram2d


class TestJointProbsPair:
    def test_sums_to_one(self, rng):
        b = BsplineBasis()
        wx = b.weights(rng.normal(size=80))
        wy = b.weights(rng.normal(size=80))
        j = joint_probs_pair(wx, wy)
        assert j.sum() == pytest.approx(1.0)

    def test_marginalizes_exactly(self, rng):
        # Partition of unity => joint marginals equal the weight means.
        b = BsplineBasis()
        wx = b.weights(rng.normal(size=60))
        wy = b.weights(rng.normal(size=60))
        j = joint_probs_pair(wx, wy)
        assert np.allclose(j.sum(axis=1), wx.mean(axis=0))
        assert np.allclose(j.sum(axis=0), wy.mean(axis=0))

    def test_transpose_symmetry(self, rng):
        b = BsplineBasis()
        wx = b.weights(rng.normal(size=40))
        wy = b.weights(rng.normal(size=40))
        assert np.allclose(joint_probs_pair(wx, wy), joint_probs_pair(wy, wx).T)

    def test_sample_mismatch_raises(self, rng):
        b = BsplineBasis()
        with pytest.raises(ValueError):
            joint_probs_pair(b.weights(rng.normal(size=10)), b.weights(rng.normal(size=11)))


class TestMiFromJoint:
    def test_independent_zero(self):
        j = np.outer([0.3, 0.7], [0.4, 0.6])
        assert mi_from_joint(j) == pytest.approx(0.0, abs=1e-12)

    def test_perfect_dependence(self):
        j = np.diag([0.25, 0.25, 0.25, 0.25])
        assert mi_from_joint(j) == pytest.approx(np.log(4))

    def test_known_binary_value(self):
        # Joint [[0.4, 0.1], [0.1, 0.4]]: MI computable by hand.
        j = np.array([[0.4, 0.1], [0.1, 0.4]])
        px = py = np.array([0.5, 0.5])
        expected = sum(
            j[a, b] * np.log(j[a, b] / (px[a] * py[b]))
            for a in range(2)
            for b in range(2)
        )
        assert mi_from_joint(j) == pytest.approx(expected)

    def test_base_bits(self):
        j = np.diag([0.5, 0.5])
        assert mi_from_joint(j, base="bit") == pytest.approx(1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mi_from_joint(np.array([1.0]))


class TestMiBspline:
    def test_symmetry(self, coupled_pair):
        x, y, _ = coupled_pair
        assert mi_bspline(x, y) == pytest.approx(mi_bspline(y, x), rel=1e-12)

    def test_non_negative(self, rng):
        for _ in range(5):
            x = rng.normal(size=100)
            y = rng.normal(size=100)
            assert mi_bspline(x, y) >= 0.0

    def test_dependence_ordering(self, coupled_pair):
        x, y, z = coupled_pair
        assert mi_bspline(x, y) > 5 * mi_bspline(x, z)

    def test_detects_nonlinear_dependence(self, rng):
        # The estimator's whole point: quadratic dependence has ~zero
        # correlation but large MI.
        x = rng.normal(size=600)
        y = x**2 + 0.1 * rng.normal(size=600)
        corr = abs(np.corrcoef(x, y)[0, 1])
        assert corr < 0.2
        assert mi_bspline(x, y) > 0.3

    def test_monotone_invariance_after_rank(self, rng):
        # On rank-transformed inputs the estimate is exactly invariant to
        # monotone maps of the raw data.
        from repro.core.discretize import rank_transform

        x = rng.normal(size=200)
        y = x + rng.normal(size=200)
        a = mi_bspline(rank_transform(x), rank_transform(y))
        b = mi_bspline(rank_transform(np.exp(x)), rank_transform(y))
        assert a == pytest.approx(b, rel=1e-12)

    def test_increases_with_coupling(self, rng):
        x = rng.normal(size=500)
        noise = rng.normal(size=500)
        mis = [mi_bspline(x, x + s * noise) for s in (0.2, 0.5, 1.0, 2.0)]
        assert mis == sorted(mis, reverse=True)

    def test_order1_matches_histogram(self, rng):
        x = rng.normal(size=150)
        y = rng.normal(size=150)
        a = mi_bspline(x, y, bins=8, order=1)
        b = mi_histogram_pair(x, y, bins=8)
        assert a == pytest.approx(b, rel=1e-10)

    def test_constant_gene_zero_mi(self, rng):
        x = np.full(100, 3.0)
        y = rng.normal(size=100)
        assert mi_bspline(x, y) == pytest.approx(0.0, abs=1e-12)

    @given(seed=st.integers(0, 200), m=st.integers(20, 150))
    @settings(max_examples=30, deadline=None)
    def test_nonneg_and_symmetric_property(self, seed, m):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=m)
        y = rng.normal(size=m)
        a = mi_bspline(x, y)
        assert a >= 0.0
        assert a == pytest.approx(mi_bspline(y, x), rel=1e-10, abs=1e-12)


class TestMiHistogram:
    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        j = histogram2d(x, y, 10)
        assert mi_histogram_pair(x, y, 10) == pytest.approx(mi_from_joint(j))


class TestMiTile:
    def test_matches_pairwise(self, rng):
        w = weight_tensor(rng.normal(size=(7, 90)))
        wi, wj = w[:3], w[3:]
        tile = mi_tile(wi, wj)
        assert tile.shape == (3, 4)
        for a in range(3):
            for c in range(4):
                assert tile[a, c] == pytest.approx(
                    mi_bspline_pair(wi[a], wj[c]), rel=1e-10, abs=1e-12
                )

    def test_hoisted_entropies_identical(self, rng):
        w = weight_tensor(rng.normal(size=(6, 70)))
        h = marginal_entropies(w)
        a = mi_tile(w[:3], w[3:], h_i=h[:3], h_j=h[3:])
        b = mi_tile(w[:3], w[3:])
        assert np.allclose(a, b)

    def test_float32_close_to_float64(self, rng):
        data = rng.normal(size=(6, 120))
        w64 = weight_tensor(data, dtype=np.float64)
        w32 = weight_tensor(data, dtype=np.float32)
        a = mi_tile(w64[:3], w64[3:])
        b = mi_tile(w32[:3], w32[3:])
        assert np.allclose(a, b, atol=1e-4)

    def test_nonnegative(self, rng):
        w = weight_tensor(rng.normal(size=(8, 50)))
        assert (mi_tile(w[:4], w[4:]) >= 0.0).all()

    def test_joint_tile_marginalizes(self, rng):
        w = weight_tensor(rng.normal(size=(5, 40)))
        j = joint_probs_tile(w[:2], w[2:])
        assert j.shape == (2, 3, 10, 10)
        assert np.allclose(j.sum(axis=(2, 3)), 1.0)

    def test_bad_marginal_shapes_raise(self, rng):
        w = weight_tensor(rng.normal(size=(4, 30)))
        with pytest.raises(ValueError):
            mi_tile(w[:2], w[2:], h_i=np.zeros(3), h_j=np.zeros(2))

    def test_mismatched_samples_raise(self, rng):
        a = weight_tensor(rng.normal(size=(2, 30)))
        b = weight_tensor(rng.normal(size=(2, 31)))
        with pytest.raises(ValueError):
            mi_tile(a, b)


class TestMiKraskov:
    def test_independent_near_zero(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        assert mi_kraskov(x, y) < 0.1

    def test_strong_dependence_positive(self, rng):
        x = rng.normal(size=300)
        y = x + 0.1 * rng.normal(size=300)
        assert mi_kraskov(x, y) > 1.0

    def test_tracks_bspline_ordering(self, rng):
        x = rng.normal(size=250)
        noise = rng.normal(size=250)
        weak = x + 2.0 * noise
        strong = x + 0.2 * noise
        assert mi_kraskov(x, strong) > mi_kraskov(x, weak)
        assert mi_bspline(x, strong) > mi_bspline(x, weak)

    def test_invalid_k(self, rng):
        x = rng.normal(size=10)
        with pytest.raises(ValueError):
            mi_kraskov(x, x, k=0)
        with pytest.raises(ValueError):
            mi_kraskov(x, x, k=10)
