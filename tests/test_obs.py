"""Tests for repro.obs: tracer, metrics, exporters, progress, bench JSON."""

import io
import json
import threading
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    MapStats,
    NullTracer,
    ProgressPrinter,
    Tracer,
    WorkerStats,
    counter_total,
    load_bench_json,
    load_events,
    merge_worker_stats,
    pairs_per_second,
    phase_breakdown,
    phase_fractions,
    span_events,
    worker_task_counts,
    write_bench_json,
    write_chrome_trace,
    write_jsonl,
)


class TestSpans:
    def test_nesting_parents(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner completes (and is appended) first.
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_wall_and_cpu_filled_on_exit(self):
        tr = Tracer()
        with tr.span("work") as sp:
            time.sleep(0.02)
        assert sp.end is not None and sp.cpu is not None
        assert sp.wall >= 0.02
        assert sp.wall < 1.0  # sanity: relative clock, not epoch

    def test_span_timing_brackets_sleep(self):
        tr = Tracer()
        t0 = tr.now()
        with tr.span("golden") as sp:
            time.sleep(0.05)
        t1 = tr.now()
        assert t0 <= sp.start <= sp.end <= t1
        assert sp.wall == pytest.approx(0.05, abs=0.04)

    def test_metadata_and_annotate(self):
        tr = Tracer()
        with tr.span("tile", i0=0, j0=4) as sp:
            tr.annotate(n_pairs=10)
            sp.annotate(extra=True)
        assert sp.metadata == {"i0": 0, "j0": 4, "n_pairs": 10, "extra": True}

    def test_annotate_outside_span_is_noop(self):
        tr = Tracer()
        tr.annotate(ignored=1)  # must not raise
        assert tr.current_span() is None

    def test_sibling_threads_do_not_nest(self):
        tr = Tracer()
        seen = {}

        def worker():
            with tr.span("child") as sp:
                seen["parent"] = sp.parent_id

        with tr.span("main_side"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread has its own stack: no parent from the main thread.
        assert seen["parent"] is None

    def test_find_spans_and_span_seconds(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("mi"):
                pass
        with tr.span("null"):
            pass
        assert len(tr.find_spans("mi")) == 3
        assert tr.span_seconds("mi") == pytest.approx(
            sum(s.wall for s in tr.find_spans("mi"))
        )


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        tr = Tracer()
        assert tr.add("tiles_done") == 1.0
        assert tr.add("tiles_done", 4) == 5.0
        assert tr.counters["tiles_done"] == 5.0
        assert [e.total for e in tr.counter_events] == [1.0, 5.0]

    def test_gauge_last_wins(self):
        tr = Tracer()
        tr.gauge("depth", 3)
        tr.gauge("depth", 1)
        assert tr.gauges["depth"] == 1.0
        assert len(tr.gauge_events) == 2


class TestNullTracer:
    def test_interface_is_noop(self):
        nt = NullTracer()
        with nt.span("x", a=1) as sp:
            nt.annotate(b=2)
            sp.annotate(c=3)
        assert nt.add("c", 5) == 0.0
        nt.gauge("g", 1.0)
        assert nt.spans == [] and nt.counters == {} and nt.gauges == {}
        assert nt.find_spans("x") == []

    def test_shared_span_never_accumulates_metadata(self):
        # Regression: annotating the shared no-op span must not leak state.
        with NULL_TRACER.span("a") as sp:
            sp.annotate(leak=True)
        assert sp.metadata == {}


class TestMetrics:
    def test_map_stats_aggregates(self):
        stats = MapStats(n_tasks=5, wall_seconds=2.0, workers=[
            WorkerStats("w0", 3, 1.0), WorkerStats("w1", 2, 0.5),
        ])
        assert stats.n_workers == 2
        assert stats.busy_seconds == pytest.approx(1.5)
        assert stats.utilization == pytest.approx(1.5 / 4.0)
        assert stats.task_counts() == {"w0": 3, "w1": 2}
        meta = stats.as_metadata()
        assert meta["worker_tasks"] == {"w0": 3, "w1": 2}
        assert meta["n_tasks"] == 5

    def test_busy_fraction(self):
        w = WorkerStats("w0", 2, 0.5)
        assert w.busy_fraction(2.0) == pytest.approx(0.25)
        assert w.busy_fraction(0.0) == 0.0

    def test_merge_worker_stats_stable_naming(self):
        merged = merge_worker_stats({140223: (3, 0.1), 9: (1, 0.2)})
        # Sorted by stringified key: "140223" < "9".
        assert [w.worker for w in merged] == ["w0", "w1"]
        assert merged[0].tasks == 3 and merged[1].tasks == 1


class TestProgressPrinter:
    def test_renders_final_line(self):
        buf = io.StringIO()
        p = ProgressPrinter(label="tiles", stream=buf, min_interval=0.0)
        for done in range(1, 4):
            p(done, 3)
        out = buf.getvalue()
        assert p.n_updates == 3
        assert "tiles: 3/3 (100.0%)" in out
        assert out.endswith("\n")

    def test_throttles_intermediate_updates(self):
        buf = io.StringIO()
        p = ProgressPrinter(stream=buf, min_interval=3600.0)
        p(1, 10)  # first paint
        p(2, 10)  # throttled
        p(10, 10)  # final always paints
        assert buf.getvalue().count("\r") == 2

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            ProgressPrinter(min_interval=-1)


@pytest.fixture
def traced():
    tr = Tracer(meta={"run": "unit"})
    with tr.span("preprocess"):
        pass
    with tr.span("mi") as sp:
        with tr.span("engine_map", engine="FakeEngine") as em:
            em.annotate(worker_tasks={"w0": 4, "w1": 2})
        tr.add("pairs_done", 450)
        tr.add("tiles_done", 6)
    sp.end = sp.start + 0.5  # pin the wall for deterministic throughput
    tr.gauge("queue_depth", 2)
    return tr


class TestJsonlRoundTrip:
    def test_schema(self, traced, tmp_path):
        path = write_jsonl(traced, tmp_path / "t.jsonl")
        events = load_events(path)
        assert events[0]["type"] == "trace"
        assert events[0]["version"] == 1
        assert events[0]["meta"] == {"run": "unit"}
        types = {e["type"] for e in events}
        assert types == {"trace", "span", "counter", "gauge"}
        for s in span_events(events):
            assert {"name", "id", "parent", "start", "end", "wall",
                    "cpu", "thread", "meta"} <= set(s)

    def test_analysis_helpers(self, traced, tmp_path):
        events = load_events(write_jsonl(traced, tmp_path / "t.jsonl"))
        breakdown = phase_breakdown(events)
        assert set(breakdown) == {"preprocess", "mi"}
        assert breakdown["mi"] == pytest.approx(0.5)
        assert sum(phase_fractions(events).values()) == pytest.approx(1.0)
        assert counter_total(events, "pairs_done") == 450.0
        assert counter_total(events, "absent") == 0.0
        assert pairs_per_second(events) == pytest.approx(900.0)
        assert worker_task_counts(events) == {"w0": 4, "w1": 2}

    def test_nesting_survives_round_trip(self, traced, tmp_path):
        events = load_events(write_jsonl(traced, tmp_path / "t.jsonl"))
        spans = {s["name"]: s for s in span_events(events)}
        assert spans["engine_map"]["parent"] == spans["mi"]["id"]


class TestChromeTrace:
    def test_schema(self, traced, tmp_path):
        path = write_chrome_trace(traced, tmp_path / "chrome.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "C"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(traced.spans)
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert any(e["args"].get("pairs_done") == 450.0 for e in counters)

    def test_args_json_serializable(self, traced, tmp_path):
        with traced.span("odd") as sp:
            sp.annotate(obj=object())  # stringified, not crashed
        path = write_chrome_trace(traced, tmp_path / "chrome.json")
        json.loads(path.read_text())


class TestBenchJson:
    def test_round_trip(self, tmp_path):
        path = write_bench_json(
            tmp_path, "E27", "trace breakdown",
            rows=[{"phase": "mi", "share": 0.7}],
            metrics={"pairs_per_second": 1234.5},
        )
        assert path.name == "BENCH_E27.json"
        doc = load_bench_json(path)
        assert doc["schema_version"] == 1
        assert doc["metrics"]["pairs_per_second"] == 1234.5
        assert doc["rows"] == [{"phase": "mi", "share": 0.7}]
        assert doc["created_unix"] > 0

    def test_rejects_non_bench_file(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            load_bench_json(bad)
