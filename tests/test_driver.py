"""Tests for repro.core.driver: the auto-strategy orchestrator."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.core.driver import auto_reconstruct
from repro.data import yeast_subset


@pytest.fixture(scope="module")
def dataset():
    return yeast_subset(n_genes=30, m_samples=120, seed=66)


CFG = TingeConfig(n_permutations=12, seed=3)


class TestStrategySelection:
    def test_small_run_in_memory(self, dataset):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        assert out.strategy == "in-memory"
        assert out.artifacts == {}

    def test_checkpoint_threshold_triggers(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, checkpoint_threshold=10)
        assert out.strategy == "checkpointed"
        assert (tmp_path / "checkpoint").exists()

    def test_tiny_budget_goes_out_of_core(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, mem_budget_gb=1e-6)
        assert out.strategy == "out-of-core"
        assert out.artifacts["mi_store"].exists()
        assert out.artifacts["weight_store"].exists()

    def test_non_memory_strategy_needs_workdir(self, dataset):
        with pytest.raises(ValueError, match="workdir"):
            auto_reconstruct(dataset.expression, dataset.genes, CFG,
                             mem_budget_gb=1e-6)


class TestStrategyEquivalence:
    def test_all_strategies_same_network(self, dataset, tmp_path):
        ref = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        ck = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                              workdir=tmp_path / "ck", checkpoint=True)
        # Out-of-core computes in float32 weights by default config; force
        # float64 for bit-equality.
        cfg64 = TingeConfig(n_permutations=12, seed=3, dtype="float64")
        ref64 = auto_reconstruct(dataset.expression, dataset.genes, cfg64)
        ooc = auto_reconstruct(dataset.expression, dataset.genes, cfg64,
                               workdir=tmp_path / "ooc", mem_budget_gb=1e-6)
        assert np.array_equal(ck.network.adjacency, ref.network.adjacency)
        assert np.allclose(ooc.network.weights, ref64.network.weights, atol=1e-12)
        assert np.array_equal(ooc.network.adjacency, ref64.network.adjacency)

    def test_matches_pipeline(self, dataset):
        auto = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        pipe = reconstruct_network(dataset.expression, dataset.genes, CFG)
        assert np.array_equal(auto.network.adjacency, pipe.network.adjacency)
        assert auto.network.threshold == pytest.approx(pipe.network.threshold)


class TestArtifacts:
    def test_network_and_edges_written(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, checkpoint=True)
        from repro.core import GeneNetwork
        from repro.data.io import read_edge_list

        net = GeneNetwork.load(out.artifacts["network"])
        assert net.n_edges == out.network.n_edges
        assert len(read_edge_list(out.artifacts["edges"])) == net.n_edges

    def test_resume_after_partial_checkpoint(self, dataset, tmp_path):
        from repro.core.bspline import weight_tensor
        from repro.core.checkpoint import mi_matrix_checkpointed
        from repro.core.discretize import rank_transform

        # Pre-populate a partial checkpoint, then let the driver finish it.
        weights = weight_tensor(rank_transform(dataset.expression),
                                dtype=np.float64)
        ck = tmp_path / "checkpoint"
        cfg = TingeConfig(n_permutations=12, seed=3, dtype="float64", tile=8)
        mi_matrix_checkpointed(weights, ck, tile=8, interrupt_after_rows=1)
        out = auto_reconstruct(dataset.expression, dataset.genes, cfg,
                               workdir=tmp_path, checkpoint=True)
        ref = auto_reconstruct(dataset.expression, dataset.genes, cfg)
        assert np.array_equal(out.network.adjacency, ref.network.adjacency)


class TestValidation:
    def test_exact_mode_rejected(self, dataset):
        cfg = TingeConfig(testing="exact", correction="none", alpha=0.05)
        with pytest.raises(ValueError, match="pooled"):
            auto_reconstruct(dataset.expression, dataset.genes, cfg)

    def test_nan_rejected(self, dataset):
        bad = dataset.expression.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="impute"):
            auto_reconstruct(bad, dataset.genes, CFG)

    def test_bad_budget(self, dataset):
        with pytest.raises(ValueError):
            auto_reconstruct(dataset.expression, dataset.genes, CFG,
                             mem_budget_gb=0.0)
