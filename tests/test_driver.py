"""Tests for repro.core.driver: the auto-strategy orchestrator."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.core.driver import auto_reconstruct
from repro.data import yeast_subset


@pytest.fixture(scope="module")
def dataset():
    return yeast_subset(n_genes=30, m_samples=120, seed=66)


CFG = TingeConfig(n_permutations=12, seed=3)


class TestStrategySelection:
    def test_small_run_in_memory(self, dataset):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        assert out.strategy == "in-memory"
        assert out.artifacts == {}

    def test_checkpoint_threshold_triggers(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, checkpoint_threshold=10)
        assert out.strategy == "checkpointed"
        assert (tmp_path / "checkpoint").exists()

    def test_tiny_budget_goes_out_of_core(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, mem_budget_gb=1e-6)
        assert out.strategy == "out-of-core"
        assert out.artifacts["mi_store"].exists()
        assert out.artifacts["weight_store"].exists()

    def test_non_memory_strategy_needs_workdir(self, dataset):
        with pytest.raises(ValueError, match="workdir"):
            auto_reconstruct(dataset.expression, dataset.genes, CFG,
                             mem_budget_gb=1e-6)


class TestStrategyEquivalence:
    def test_all_strategies_same_network(self, dataset, tmp_path):
        ref = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        ck = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                              workdir=tmp_path / "ck", checkpoint=True)
        # Out-of-core computes in float32 weights by default config; force
        # float64 for bit-equality.
        cfg64 = TingeConfig(n_permutations=12, seed=3, dtype="float64")
        ref64 = auto_reconstruct(dataset.expression, dataset.genes, cfg64)
        ooc = auto_reconstruct(dataset.expression, dataset.genes, cfg64,
                               workdir=tmp_path / "ooc", mem_budget_gb=1e-6)
        assert np.array_equal(ck.network.adjacency, ref.network.adjacency)
        assert np.allclose(ooc.network.weights, ref64.network.weights, atol=1e-12)
        assert np.array_equal(ooc.network.adjacency, ref64.network.adjacency)

    def test_matches_pipeline(self, dataset):
        auto = auto_reconstruct(dataset.expression, dataset.genes, CFG)
        pipe = reconstruct_network(dataset.expression, dataset.genes, CFG)
        assert np.array_equal(auto.network.adjacency, pipe.network.adjacency)
        assert auto.network.threshold == pytest.approx(pipe.network.threshold)


class TestArtifacts:
    def test_network_and_edges_written(self, dataset, tmp_path):
        out = auto_reconstruct(dataset.expression, dataset.genes, CFG,
                               workdir=tmp_path, checkpoint=True)
        from repro.core import GeneNetwork
        from repro.data.io import read_edge_list

        net = GeneNetwork.load(out.artifacts["network"])
        assert net.n_edges == out.network.n_edges
        assert len(read_edge_list(out.artifacts["edges"])) == net.n_edges

    def test_resume_after_partial_checkpoint(self, dataset, tmp_path):
        from repro.core.bspline import weight_tensor
        from repro.core.checkpoint import mi_matrix_checkpointed
        from repro.core.discretize import rank_transform

        # Pre-populate a partial checkpoint, then let the driver finish it.
        weights = weight_tensor(rank_transform(dataset.expression),
                                dtype=np.float64)
        ck = tmp_path / "checkpoint"
        cfg = TingeConfig(n_permutations=12, seed=3, dtype="float64", tile=8)
        mi_matrix_checkpointed(weights, ck, tile=8, interrupt_after_rows=1)
        out = auto_reconstruct(dataset.expression, dataset.genes, cfg,
                               workdir=tmp_path, checkpoint=True)
        ref = auto_reconstruct(dataset.expression, dataset.genes, cfg)
        assert np.array_equal(out.network.adjacency, ref.network.adjacency)


class TestCorrectionSupport:
    def test_bh_rejected_not_silently_downgraded(self, dataset):
        # Regression: correction="bh" used to be silently swapped for
        # Bonferroni — a different statistical procedure.
        cfg = TingeConfig(n_permutations=12, seed=3, correction="bh")
        with pytest.raises(ValueError, match="bh"):
            auto_reconstruct(dataset.expression, dataset.genes, cfg)

    def test_supported_corrections_run(self, dataset):
        for correction in ("bonferroni", "none"):
            cfg = TingeConfig(n_permutations=12, seed=3, correction=correction)
            out = auto_reconstruct(dataset.expression, dataset.genes, cfg)
            assert out.strategy == "in-memory"


class TestNullGeneSubset:
    def test_small_n_uses_every_gene(self):
        from repro.core.driver import _null_gene_subset

        assert np.array_equal(_null_gene_subset(30, 2048, seed=3), np.arange(30))
        assert np.array_equal(_null_gene_subset(2048, 2048, seed=3), np.arange(2048))

    def test_large_n_samples_randomly(self):
        # Regression: the null used to be built from the *first* 2048
        # genes — a contiguous, potentially biased slice.
        from repro.core.driver import _null_gene_subset

        subset = _null_gene_subset(10000, 2048, seed=3)
        assert subset.size == 2048
        assert np.unique(subset).size == 2048
        assert np.array_equal(subset, np.sort(subset))
        assert not np.array_equal(subset, np.arange(2048)), \
            "subset must not be the contiguous prefix"
        # Deterministic in the run's seed, different across seeds.
        assert np.array_equal(subset, _null_gene_subset(10000, 2048, seed=3))
        assert not np.array_equal(subset, _null_gene_subset(10000, 2048, seed=4))

    def test_degenerate_cap_rejected(self):
        from repro.core.driver import _null_gene_subset

        with pytest.raises(ValueError):
            _null_gene_subset(10, 1, seed=0)

    def test_out_of_core_runs_deterministic(self, dataset, tmp_path):
        cfg = TingeConfig(n_permutations=12, seed=3, dtype="float64")
        a = auto_reconstruct(dataset.expression, dataset.genes, cfg,
                             workdir=tmp_path / "a", mem_budget_gb=1e-6)
        b = auto_reconstruct(dataset.expression, dataset.genes, cfg,
                             workdir=tmp_path / "b", mem_budget_gb=1e-6)
        assert a.strategy == b.strategy == "out-of-core"
        assert np.array_equal(a.network.adjacency, b.network.adjacency)
        assert a.network.threshold == b.network.threshold


class TestEngineWiring:
    @pytest.mark.parametrize("strategy_kwargs", [
        {},
        {"checkpoint": True},
        {"mem_budget_gb": 1e-6},
    ], ids=["in-memory", "checkpointed", "out-of-core"])
    def test_sharedmem_engine_matches_serial(self, dataset, tmp_path, strategy_kwargs):
        from repro.parallel import SharedMemoryEngine

        cfg = TingeConfig(n_permutations=12, seed=3, dtype="float64")
        kwargs = dict(strategy_kwargs)
        if kwargs:
            kwargs["workdir"] = tmp_path / "eng"
        ref_kwargs = {k: (tmp_path / "ref" if k == "workdir" else v)
                      for k, v in kwargs.items()}
        ref = auto_reconstruct(dataset.expression, dataset.genes, cfg, **ref_kwargs)
        out = auto_reconstruct(dataset.expression, dataset.genes, cfg,
                               engine=SharedMemoryEngine(n_workers=2), **kwargs)
        assert np.array_equal(out.network.adjacency, ref.network.adjacency)
        assert out.network.threshold == ref.network.threshold


class TestValidation:
    def test_exact_mode_rejected(self, dataset):
        cfg = TingeConfig(testing="exact", correction="none", alpha=0.05)
        with pytest.raises(ValueError, match="pooled"):
            auto_reconstruct(dataset.expression, dataset.genes, cfg)

    def test_nan_rejected(self, dataset):
        bad = dataset.expression.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="impute"):
            auto_reconstruct(bad, dataset.genes, CFG)

    def test_bad_budget(self, dataset):
        with pytest.raises(ValueError):
            auto_reconstruct(dataset.expression, dataset.genes, CFG,
                             mem_budget_gb=0.0)
