"""Property-based tests (Hypothesis) for the execution core.

Three invariants the whole fault-tolerance story leans on, checked over
randomized inputs rather than hand-picked cases:

* the tile grid covers every gene pair ``i < j`` exactly once, for any
  ``(n_genes, tile)`` — retrying or quarantining a tile can therefore
  never double-count or drop a pair that another tile owns;
* the MI matrix is symmetric, zero-diagonal, finite and non-negative for
  arbitrary expression data;
* every schedule's dispatch order is a permutation of the tile indices —
  reordering (which the resilient layer composes with) never loses work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bspline import weight_tensor
from repro.core.exec import SCHEDULE_NAMES, TilePlan, schedule_policy
from repro.core.mi_matrix import mi_matrix
from repro.core.tiling import pair_count, tile_grid


class TestTileGridCoverage:
    @given(n=st.integers(min_value=2, max_value=60),
           tile=st.integers(min_value=1, max_value=70))
    @settings(max_examples=60, deadline=None)
    def test_every_pair_covered_exactly_once(self, n, tile):
        cover = np.zeros((n, n), dtype=np.int64)
        for t in tile_grid(n, tile):
            cover[t.i0:t.i1, t.j0:t.j1] += t.pair_mask()
        iu = np.triu_indices(n, k=1)
        assert np.all(cover[iu] == 1)
        assert np.all(cover[np.tril_indices(n)] == 0)

    @given(n=st.integers(min_value=2, max_value=60),
           tile=st.integers(min_value=1, max_value=70))
    @settings(max_examples=60, deadline=None)
    def test_pair_counts_sum_to_total(self, n, tile):
        tiles = tile_grid(n, tile)
        assert sum(t.n_pairs for t in tiles) == pair_count(n)
        assert all(t.n_pairs > 0 for t in tiles)


class TestMiMatrixProperties:
    @given(n=st.integers(min_value=2, max_value=8),
           m=st.integers(min_value=8, max_value=20),
           tile=st.integers(min_value=1, max_value=9),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_symmetric_zero_diagonal_finite_nonnegative(self, n, m, tile, seed):
        rng = np.random.default_rng(seed)
        weights = weight_tensor(rng.normal(size=(n, m)), bins=6)
        mi = mi_matrix(weights, tile=tile).mi
        assert np.array_equal(mi, mi.T)
        assert np.all(np.diag(mi) == 0.0)
        assert np.isfinite(mi).all()
        assert np.all(mi >= 0.0)

    @given(tile=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_tile_size_never_changes_result(self, tile, seed):
        rng = np.random.default_rng(seed)
        weights = weight_tensor(rng.normal(size=(7, 16)), bins=6)
        ref = mi_matrix(weights, tile=7).mi
        assert np.allclose(mi_matrix(weights, tile=tile).mi, ref,
                           rtol=1e-12, atol=1e-12)


class TestScheduleOrderProperties:
    @given(n=st.integers(min_value=2, max_value=40),
           tile=st.integers(min_value=1, max_value=12),
           workers=st.integers(min_value=1, max_value=9),
           schedule=st.sampled_from(list(SCHEDULE_NAMES) + [None]))
    @settings(max_examples=80, deadline=None)
    def test_order_is_a_permutation(self, n, tile, workers, schedule):
        plan = TilePlan(n_genes=n, tile=tile, base="nat",
                        tiles=tile_grid(n, tile),
                        policy=schedule_policy(schedule))
        order = plan.order(workers)
        assert sorted(order) == list(range(plan.n_tiles))
