"""Tests for repro.parallel.scheduler: policies and schedule simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import (
    CyclicScheduler,
    DynamicScheduler,
    GuidedScheduler,
    LptScheduler,
    StaticScheduler,
    make_scheduler,
)

POLICIES = [
    StaticScheduler(),
    CyclicScheduler(),
    DynamicScheduler(chunk=1),
    DynamicScheduler(chunk=4),
    GuidedScheduler(),
    LptScheduler(),
]


class TestSimulateInvariants:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.name}")
    def test_work_conservation(self, policy, rng):
        costs = rng.uniform(0.1, 2.0, size=40)
        a = policy.simulate(costs, 5)
        assert a.worker_loads.sum() == pytest.approx(costs.sum())
        executed = sorted(i for items in a.worker_items for i in items)
        assert executed == list(range(40))

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.name}")
    def test_makespan_bounds(self, policy, rng):
        costs = rng.uniform(0.1, 2.0, size=30)
        p = 4
        a = policy.simulate(costs, p)
        assert a.makespan >= costs.sum() / p - 1e-12  # can't beat perfect split
        assert a.makespan >= costs.max() - 1e-12
        assert a.makespan <= costs.sum() + 1e-12

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.name}")
    def test_single_worker_is_serial(self, policy, rng):
        costs = rng.uniform(0.1, 1.0, size=20)
        a = policy.simulate(costs, 1)
        assert a.makespan == pytest.approx(costs.sum())
        assert a.utilization == pytest.approx(1.0)

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.name}")
    def test_finish_after_start(self, policy, rng):
        costs = rng.uniform(0.1, 1.0, size=25)
        a = policy.simulate(costs, 3)
        assert np.all(a.finish_times >= a.start_times)
        assert a.finish_times.max() == pytest.approx(a.makespan)

    def test_empty_workload(self):
        a = DynamicScheduler().simulate(np.array([]), 4)
        assert a.makespan == 0.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            StaticScheduler().simulate(np.array([-1.0]), 2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            StaticScheduler().simulate(np.array([1.0]), 0)


class TestPolicyBehaviour:
    def test_dynamic_beats_static_on_triangular_costs(self):
        # Decreasing per-item costs (the block-row structure of the pair
        # triangle): static contiguous assignment overloads early workers.
        costs = np.arange(200, 0, -1, dtype=float)
        p = 8
        static = StaticScheduler().simulate(costs, p)
        dynamic = DynamicScheduler(chunk=1).simulate(costs, p)
        assert dynamic.makespan < static.makespan * 0.8
        assert dynamic.imbalance < static.imbalance

    def test_cyclic_beats_static_on_trend(self):
        costs = np.linspace(10, 1, 120)
        p = 6
        static = StaticScheduler().simulate(costs, p)
        cyclic = CyclicScheduler().simulate(costs, p)
        assert cyclic.makespan <= static.makespan

    def test_lpt_near_optimal(self, rng):
        costs = rng.uniform(0.5, 5.0, size=64)
        p = 7
        lpt = LptScheduler().simulate(costs, p)
        lower_bound = max(costs.sum() / p, costs.max())
        assert lpt.makespan <= lower_bound * 4 / 3 + costs.max() / 3 + 1e-9

    def test_dynamic_chunk1_close_to_lpt(self, rng):
        costs = rng.uniform(0.5, 2.0, size=100)
        p = 10
        dyn = DynamicScheduler(chunk=1).simulate(costs, p)
        lpt = LptScheduler().simulate(costs, p)
        assert dyn.makespan <= lpt.makespan * 1.25

    def test_guided_chunks_shrink(self):
        chunks = GuidedScheduler().chunk_sequence(100, 4)
        sizes = [c.size for c in chunks]
        assert sizes[0] == 25
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sum(sizes) == 100

    def test_dynamic_chunk_groups(self):
        chunks = DynamicScheduler(chunk=3).chunk_sequence(10, 4)
        assert [c.size for c in chunks] == [3, 3, 3, 1]

    def test_lpt_requires_costs(self):
        with pytest.raises(ValueError):
            LptScheduler().static_assignment(10, 2, costs=None)

    @given(seed=st.integers(0, 100), p=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_dynamic_never_idles_while_work_remains(self, seed, p):
        # Greedy list scheduling: makespan <= 2 * optimal lower bound.
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.1, 3.0, size=50)
        a = DynamicScheduler(chunk=1).simulate(costs, p)
        lb = max(costs.sum() / p, costs.max())
        assert a.makespan <= 2 * lb + 1e-9


class TestMakeScheduler:
    def test_all_names(self):
        for name in ("static", "cyclic", "dynamic", "guided", "lpt"):
            assert make_scheduler(name).name == name

    def test_kwargs_forwarded(self):
        assert make_scheduler("dynamic", chunk=7).chunk == 7

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("random")

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            DynamicScheduler(chunk=0)
        with pytest.raises(ValueError):
            GuidedScheduler(min_chunk=0)
