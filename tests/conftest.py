"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.data.datasets import toy, yeast_subset


@pytest.fixture
def rng():
    """Deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def coupled_pair(rng):
    """(x, y, z): x and y strongly dependent, z independent of both."""
    x = rng.normal(size=400)
    y = x + 0.25 * rng.normal(size=400)
    z = rng.normal(size=400)
    return x, y, z


@pytest.fixture(scope="session")
def small_dataset():
    """A 30-gene ground-truth dataset (session-scoped: generation is pure)."""
    return toy(n_genes=30, m_samples=200, seed=7)


@pytest.fixture(scope="session")
def medium_dataset():
    """An 80-gene dataset with hubs and nonlinear links."""
    return yeast_subset(n_genes=80, m_samples=250, seed=3)


@pytest.fixture(scope="session")
def small_weights(small_dataset):
    """Weight tensor of the small dataset (rank-transformed)."""
    from repro.core.discretize import rank_transform

    return weight_tensor(rank_transform(small_dataset.expression), bins=10, order=3)
