"""Tests for the sample-increment path of repro.core.incremental.

The contract under test: after ``NetworkUpdater.add_samples`` the
*network* — threshold, adjacency, and the MI weight of every edge — is
bit-identical to a from-scratch pipeline run on the grown dataset, while
only a proper subset of pairs is recomputed; interruption leaves the
visible state untouched and a resume replays only the still-dirty tiles.
"""

import json

import numpy as np
import pytest

from repro.core.checkpoint import DeltaCheckpointSink, checkpoint_status
from repro.core.discretize import extend_columns, rank_drift_bound
from repro.core.exec import TensorSource, filter_plan, plan_tiles
from repro.core.incremental import NetworkUpdater, UpdateDelta
from repro.core.pipeline import TingeConfig, reconstruct_network
from repro.obs.tracer import Tracer

N, M, DM = 60, 200, 2
CONFIG = TingeConfig(n_permutations=10, n_null_pairs=80, alpha=0.01,
                     seed=3, tile=8)


def _dataset(n=N, m=M, dm=DM, seed=42):
    """(old, new_columns, full): mostly-null data + some coupled pairs."""
    rng = np.random.default_rng(seed)
    full = rng.normal(size=(n, m + dm))
    for k in range(n // 6):
        full[2 * k + 1] = full[2 * k] + 0.3 * rng.normal(size=m + dm)
    return full[:, :m], full[:, m:], full


@pytest.fixture(scope="module")
def stream():
    data, new, full = _dataset()
    res_old = reconstruct_network(data, config=CONFIG)
    res_full = reconstruct_network(full, config=CONFIG)
    return data, new, full, res_old, res_full


def _assert_network_identical(updater, reference):
    """The streaming consistency guarantee, literally."""
    net = updater.network
    ref = reference.network
    assert net.threshold == ref.threshold
    assert np.array_equal(net.adjacency, ref.adjacency)
    assert np.array_equal(net.weights[ref.adjacency], ref.weights[ref.adjacency])


class TestAddSamples:
    def test_bit_identical_to_full_recompute(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        delta = u.add_samples(new)
        assert delta is not None
        _assert_network_identical(u, res_full)

    def test_recomputes_proper_subset(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        delta = u.add_samples(new)
        assert 0 < delta.pairs_recomputed < delta.pairs_total
        assert delta.tiles_skipped > 0
        assert delta.tiles_dirty + delta.tiles_skipped == delta.tiles_total
        assert delta.recompute_fraction == delta.pairs_recomputed / delta.pairs_total

    def test_screen_never_skips_a_crossing_pair(self, stream):
        """Conservativeness audit: every pair at-or-above the new threshold
        is bitwise equal to the full recompute (stale entries are only
        ever below-threshold non-edges in both matrices)."""
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        u.add_samples(new)
        mi_full = res_full.mi
        thr = res_full.network.threshold
        above = (mi_full > thr) | (u.mi > thr)
        assert np.array_equal(u.mi[above], mi_full[above])

    def test_delta_reports_edge_churn(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        before = u.network.edge_set()
        delta = u.add_samples(new)
        after = u.network.edge_set()
        assert {(a, b) for a, b, _ in delta.edges_added} == after - before
        assert {(a, b) for a, b, _ in delta.edges_removed} == before - after
        assert delta.n_samples_before == M
        assert delta.n_samples_after == M + DM
        assert delta.threshold_after == res_full.network.threshold

    def test_as_dict_is_json_safe(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        delta = u.add_samples(new)
        payload = json.loads(json.dumps(delta.as_dict()))
        assert payload["pairs_recomputed"] == delta.pairs_recomputed
        assert payload["cached"] is False

    def test_single_column_1d(self, stream):
        data, new, full, res_old, _ = stream
        ref = reconstruct_network(full[:, : M + 1], config=CONFIG)
        u = NetworkUpdater.from_result(res_old, data)
        assert u.add_samples(new[:, 0]) is not None  # 1-D accepted
        _assert_network_identical(u, ref)

    def test_consecutive_increments(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        u.add_samples(new[:, :1])
        u.add_samples(new[:, 1:])
        assert u.n_samples == M + DM
        _assert_network_identical(u, res_full)

    def test_tracer_counters(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        tracer = Tracer()
        delta = u.add_samples(new, tracer=tracer)
        counters = tracer.counters
        assert counters["tiles_dirty"] == delta.tiles_dirty
        assert counters["tiles_skipped"] == delta.tiles_skipped
        assert counters["delta_edges"] == (len(delta.edges_added)
                                           + len(delta.edges_removed))

    def test_mixed_gene_and_sample_ops(self, stream):
        data, new, full, res_old, _ = stream
        rng = np.random.default_rng(9)
        fresh = rng.normal(size=M)
        cols = rng.normal(size=(N, DM))  # one row per gene of the final list

        u = NetworkUpdater.from_result(res_old, data)
        u.remove_gene("G00010")
        u.add_gene("fresh", fresh)
        assert u.add_samples(cols) is not None

        # From-scratch on the exact final dataset (same gene order).
        final = np.vstack([np.delete(data, 10, axis=0), fresh[None, :]])
        final = np.concatenate([final, cols], axis=1)
        genes = [g for g in res_old.network.genes if g != "G00010"] + ["fresh"]
        res_ref = reconstruct_network(final, config=CONFIG, genes=genes)
        _assert_network_identical(u, res_ref)


class TestAtomicityAndResume:
    def test_interrupt_returns_none_and_leaves_state(self, stream, tmp_path):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        mi_before, thr_before = u.mi, u.threshold
        out = u.add_samples(new, checkpoint_dir=tmp_path / "ck",
                            interrupt_after_rows=1)
        assert out is None
        assert np.array_equal(u.mi, mi_before)
        assert u.threshold == thr_before
        assert u.n_samples == M

    def test_resume_replays_only_remaining_rows(self, stream, tmp_path):
        data, new, full, res_old, res_full = stream
        ck = tmp_path / "ck"
        u = NetworkUpdater.from_result(res_old, data)
        assert u.add_samples(new, checkpoint_dir=ck,
                             interrupt_after_rows=1) is None
        status = checkpoint_status(ck)
        done_before = status["done_rows"]
        assert 0 < done_before < status["total_rows"]
        delta = u.add_samples(new, checkpoint_dir=ck)
        assert delta is not None
        _assert_network_identical(u, res_full)
        ledger = json.loads((ck / "ledger.json").read_text())
        assert ledger["delta"]["kind"] == "sample-increment"
        assert ledger["delta"]["m_samples"] == M + DM

    def test_checkpointed_uninterrupted_matches_dense(self, stream, tmp_path):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        delta = u.add_samples(new, checkpoint_dir=tmp_path / "ck")
        assert delta is not None
        _assert_network_identical(u, res_full)

    def test_resume_rejects_different_increment(self, stream, tmp_path):
        data, new, full, res_old, _ = stream
        ck = tmp_path / "ck"
        u = NetworkUpdater.from_result(res_old, data)
        assert u.add_samples(new, checkpoint_dir=ck,
                             interrupt_after_rows=1) is None
        other = new + 1.0  # a different batch => different fingerprint
        with pytest.raises(ValueError, match="fingerprint"):
            u.add_samples(other, checkpoint_dir=ck)


class TestAdoptSamples:
    def test_adopt_matches_add(self, stream):
        data, new, full, res_old, res_full = stream
        u = NetworkUpdater.from_result(res_old, data)
        delta = u.adopt_samples(new, res_full.mi)
        assert delta.cached is True
        assert delta.pairs_recomputed == 0
        _assert_network_identical(u, res_full)
        # The adopted state keeps streaming: a further increment works.
        rng = np.random.default_rng(1)
        more = rng.normal(size=(N, 1))
        grown = np.concatenate([full, more], axis=1)
        ref = reconstruct_network(grown, config=CONFIG)
        assert u.add_samples(more) is not None
        _assert_network_identical(u, ref)

    def test_adopt_validates_shape(self, stream):
        data, new, full, res_old, _ = stream
        u = NetworkUpdater.from_result(res_old, data)
        with pytest.raises(ValueError, match="MI matrix"):
            u.adopt_samples(new, np.zeros((3, 3)))


class TestStreamingValidation:
    def test_needs_data_and_config(self, stream):
        data, new, full, res_old, _ = stream
        u = NetworkUpdater(
            np.zeros((4, 12, 10)), np.zeros((4, 4)),
            [f"g{i}" for i in range(4)], res_old.null)
        with pytest.raises(ValueError, match="data"):
            u.add_samples(np.zeros((4, 1)))

    @pytest.mark.parametrize("field,value,match", [
        ("correction", "bh", "fixed threshold"),
        ("base", "bits", "nat"),
        ("dtype", "float32", "float64"),
    ])
    def test_unsupported_configs(self, stream, field, value, match):
        data, new, full, res_old, _ = stream
        cfg = TingeConfig(**{**CONFIG.__dict__, field: value})
        u = NetworkUpdater(np.zeros((4, 12, 10)), np.zeros((4, 4)),
                           [f"g{i}" for i in range(4)], res_old.null,
                           data=np.zeros((4, 12)), config=cfg)
        with pytest.raises(ValueError, match=match):
            u.add_samples(np.zeros((4, 1)))

    def test_rejects_nonfinite_columns(self, stream):
        data, new, full, res_old, _ = stream
        u = NetworkUpdater.from_result(res_old, data)
        bad = new.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            u.add_samples(bad)

    def test_from_result_requires_null(self, stream):
        data, new, full, res_old, _ = stream
        import dataclasses
        gutted = dataclasses.replace(res_old, null=None)
        with pytest.raises(ValueError, match="pooled null"):
            NetworkUpdater.from_result(gutted, data)


class TestDeltaCheckpointSink:
    @pytest.fixture
    def plan_and_source(self):
        rng = np.random.default_rng(0)
        from repro.core.bspline import weight_tensor
        from repro.core.discretize import rank_transform

        w = weight_tensor(rank_transform(rng.normal(size=(12, 40))))
        source = TensorSource(w)
        return plan_tiles(source, tile=4), source

    def test_validates_base_shape(self, plan_and_source, tmp_path):
        plan, source = plan_and_source
        with pytest.raises(ValueError, match="base matrix"):
            DeltaCheckpointSink(tmp_path, plan, source.fingerprint(),
                                base=np.zeros((3, 3)))

    def test_rejects_mismatched_dirty_set(self, plan_and_source, tmp_path):
        plan, source = plan_and_source
        base = np.zeros((12, 12))
        sub_a = filter_plan(plan, plan.tiles[:2])
        sub_b = filter_plan(plan, plan.tiles[1:3])
        DeltaCheckpointSink(tmp_path, sub_a, source.fingerprint(), base=base)
        with pytest.raises(ValueError, match="dirty-tile"):
            DeltaCheckpointSink(tmp_path, sub_b, source.fingerprint(), base=base)

    def test_finalize_patches_base(self, plan_and_source, tmp_path):
        from repro.core.exec import run_tile_plan
        from repro.core.mi_matrix import mi_matrix

        plan, source = plan_and_source
        full = mi_matrix(source.weights, tile=4).mi
        base = np.full((12, 12), 7.0)
        np.fill_diagonal(base, 0.0)
        sub = filter_plan(plan, plan.tiles[:2])
        sink = DeltaCheckpointSink(tmp_path, sub, source.fingerprint(),
                                   base=base)
        out = run_tile_plan(sub, source, sink)
        covered = np.zeros((12, 12), dtype=bool)
        for t in sub.tiles:
            covered[t.i0:t.i1, t.j0:t.j1] = True
        covered |= covered.T
        np.fill_diagonal(covered, False)
        assert np.array_equal(out[covered], full[covered])
        off_diag = ~covered & ~np.eye(12, dtype=bool)
        assert (out[off_diag] == 7.0).all()
        assert (np.diag(out) == 0.0).all()


class TestExtendColumnsAndDrift:
    def test_extend_columns_appends(self):
        data = np.arange(12.0).reshape(3, 4)
        out = extend_columns(data, np.ones(3))
        assert out.shape == (3, 5)
        assert np.array_equal(out[:, :4], data)
        assert (out[:, 4] == 1.0).all()

    def test_extend_columns_validation(self):
        data = np.zeros((3, 4))
        with pytest.raises(ValueError, match="new sample columns"):
            extend_columns(data, np.zeros((2, 1)))
        with pytest.raises(ValueError, match="no new samples"):
            extend_columns(data, np.zeros((3, 0)))
        with pytest.raises(ValueError, match="NaN"):
            extend_columns(data, np.full((3, 1), np.nan))

    def test_rank_drift_bound_shrinks(self):
        assert rank_drift_bound(100, 101) == pytest.approx(1 / 100)
        assert rank_drift_bound(1000, 1001) < rank_drift_bound(100, 101)
        with pytest.raises(ValueError):
            rank_drift_bound(10, 10)
        with pytest.raises(ValueError):
            rank_drift_bound(1, 5)

    def test_drift_bound_is_sharp(self):
        # Empirically: appending dm columns never moves an old sample's
        # transformed value by more than the documented bound.
        rng = np.random.default_rng(7)
        from repro.core.discretize import rank_transform

        data = rng.normal(size=(5, 50))
        new = rng.normal(size=(5, 3))
        before = rank_transform(data)
        after = rank_transform(np.concatenate([data, new], axis=1))[:, :50]
        assert np.abs(after - before).max() <= rank_drift_bound(50, 53) + 1e-12
