"""Tests for repro.core.exact: the fused per-pair permutation kernel."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.core.bspline import weight_tensor
from repro.core.discretize import rank_transform
from repro.core.exact import exact_mi_pvalues, mi_tile_fused
from repro.core.mi import mi_bspline_pair, mi_tile
from repro.core.mi_matrix import mi_matrix
from repro.core.permutation import per_pair_pvalues
from repro.parallel.engine import ThreadEngine
from repro.stats.random import as_rng, permutation_matrix


@pytest.fixture(scope="module")
def ranked_weights():
    rng = np.random.default_rng(31)
    x = rng.normal(size=100)
    data = np.vstack([
        x,
        x + 0.1 * rng.normal(size=100),
        rng.normal(size=(8, 100)),
    ])
    return weight_tensor(rank_transform(data))


class TestMiTileFused:
    def test_observed_matches_plain_tile(self, ranked_weights):
        perms = permutation_matrix(5, 100, seed=0)
        wi, wj = ranked_weights[:4], ranked_weights[4:]
        observed, _ = mi_tile_fused(wi, wj, perms)
        assert np.allclose(observed, mi_tile(wi, wj))

    def test_exceed_counts_bounds(self, ranked_weights):
        perms = permutation_matrix(7, 100, seed=1)
        _, exceed = mi_tile_fused(ranked_weights[:3], ranked_weights[3:], perms)
        assert exceed.min() >= 0 and exceed.max() <= 7

    def test_dependent_pair_never_exceeded(self, ranked_weights):
        # Genes 0 and 1 are strongly coupled: no permutation should beat
        # the observed MI.
        perms = permutation_matrix(20, 100, seed=2)
        _, exceed = mi_tile_fused(ranked_weights[:1], ranked_weights[1:2], perms)
        assert exceed[0, 0] == 0

    def test_independent_pair_often_exceeded(self, ranked_weights):
        perms = permutation_matrix(40, 100, seed=3)
        _, exceed = mi_tile_fused(ranked_weights[4:5], ranked_weights[7:8], perms)
        assert exceed[0, 0] > 4

    def test_matches_manual_permuted_mi(self, ranked_weights):
        perms = permutation_matrix(3, 100, seed=4)
        wi, wj = ranked_weights[2:4], ranked_weights[5:7]
        observed, exceed = mi_tile_fused(wi, wj, perms)
        manual = np.zeros((2, 2), dtype=np.int64)
        for r in range(3):
            for a in range(2):
                for c in range(2):
                    mi_perm = mi_bspline_pair(wi[a][perms[r]], wj[c])
                    manual[a, c] += mi_perm >= observed[a, c]
        assert np.array_equal(exceed, manual)

    def test_rejects_wrong_perm_shape(self, ranked_weights):
        with pytest.raises(ValueError):
            mi_tile_fused(ranked_weights[:2], ranked_weights[2:4],
                          permutation_matrix(3, 99, seed=0))


class TestExactMiPvalues:
    def test_matches_per_pair_path_exactly(self, ranked_weights):
        """Same seed -> same permutations -> bit-identical p-values."""
        res = exact_mi_pvalues(ranked_weights, n_permutations=15, seed=9)
        n = ranked_weights.shape[0]
        pairs = np.array([[i, j] for i in range(n) for j in range(i + 1, n)])
        obs, pvals = per_pair_pvalues(ranked_weights, pairs,
                                      n_permutations=15, seed=9)
        for (i, j), o, p in zip(pairs, obs, pvals):
            assert res.mi[i, j] == pytest.approx(o, rel=1e-12)
            assert res.pvalues[i, j] == pytest.approx(p, rel=1e-12)

    def test_mi_matches_mi_matrix(self, ranked_weights):
        res = exact_mi_pvalues(ranked_weights, n_permutations=5, seed=0)
        assert np.allclose(res.mi, mi_matrix(ranked_weights).mi)

    def test_symmetric_with_unit_diagonal_pvalues(self, ranked_weights):
        res = exact_mi_pvalues(ranked_weights, n_permutations=5, seed=0)
        assert np.array_equal(res.pvalues, res.pvalues.T)
        assert np.all(np.diag(res.pvalues) == 1.0)
        assert res.pvalues.min() >= 1.0 / 6.0

    def test_tile_invariance(self, ranked_weights):
        a = exact_mi_pvalues(ranked_weights, n_permutations=8, seed=2, tile=3)
        b = exact_mi_pvalues(ranked_weights, n_permutations=8, seed=2, tile=64)
        assert np.allclose(a.pvalues, b.pvalues)
        assert np.allclose(a.mi, b.mi)

    def test_engine_parity(self, ranked_weights):
        a = exact_mi_pvalues(ranked_weights, n_permutations=6, seed=3)
        b = exact_mi_pvalues(ranked_weights, n_permutations=6, seed=3,
                             engine=ThreadEngine(n_workers=2))
        assert np.allclose(a.pvalues, b.pvalues)

    def test_validation(self, ranked_weights):
        with pytest.raises(ValueError):
            exact_mi_pvalues(ranked_weights[0], 5)
        with pytest.raises(ValueError):
            exact_mi_pvalues(ranked_weights, 0)


class TestExactPipelineMode:
    def test_finds_planted_edge(self, rng):
        x = rng.normal(size=150)
        data = np.vstack([x, x + 0.1 * rng.normal(size=150),
                          rng.normal(size=(4, 150))])
        res = reconstruct_network(
            data, genes=list("abcdef"),
            config=TingeConfig(testing="exact", n_permutations=60,
                               correction="none", alpha=0.02),
        )
        assert ("a", "b") in res.network.edge_set()
        assert res.null is None
        assert res.pvalues is not None
        assert set(res.timings) == {"preprocess", "weights", "mi", "threshold"}

    def test_exact_allows_non_rank_transform(self, rng):
        data = rng.normal(size=(5, 80))
        cfg = TingeConfig(testing="exact", transform="none",
                          correction="none", alpha=0.05, n_permutations=20)
        res = reconstruct_network(data, config=cfg)
        assert res.network.n_genes == 5

    def test_underresolved_bonferroni_rejected(self, rng):
        data = rng.normal(size=(30, 60))
        cfg = TingeConfig(testing="exact", n_permutations=20,
                          correction="bonferroni", alpha=0.01)
        with pytest.raises(ValueError, match="resolves p-values"):
            reconstruct_network(data, config=cfg)

    def test_exact_and_pooled_agree_on_strong_structure(self, rng):
        x = rng.normal(size=200)
        data = np.vstack([x, x + 0.15 * rng.normal(size=200),
                          rng.normal(size=(6, 200))])
        pooled = reconstruct_network(
            data, config=TingeConfig(n_permutations=40, alpha=0.05, seed=1))
        exact = reconstruct_network(
            data, config=TingeConfig(testing="exact", n_permutations=80,
                                     correction="none", alpha=0.02, seed=1))
        assert exact.network.adjacency[0, 1]
        assert pooled.network.adjacency[0, 1]

    def test_bad_testing_value(self):
        with pytest.raises(ValueError):
            TingeConfig(testing="bootstrap")
