"""Tests for repro.machine.offload and repro.machine.calibrate."""

import pytest

from repro.machine.calibrate import calibrate_host, project_runtime
from repro.machine.offload import offload_plan
from repro.machine.spec import XEON_E5_2670_DUAL, XEON_PHI_5110P


class TestOffloadPlan:
    def test_serial_is_sum(self):
        plan = offload_plan(XEON_PHI_5110P, bytes_in=6e9, bytes_out=1e6, compute_s=100.0)
        assert plan.serial_s == pytest.approx(
            plan.transfer_in_s + plan.compute_s + plan.transfer_out_s
        )

    def test_overlap_never_worse(self):
        plan = offload_plan(XEON_PHI_5110P, bytes_in=6e9, bytes_out=1e6, compute_s=1.0)
        assert plan.overlapped_s <= plan.serial_s + 1e-12

    def test_compute_bound_hides_transfer(self):
        # Whole-genome regime: transfer is ~0.2% of compute; overlap hides it.
        plan = offload_plan(XEON_PHI_5110P, bytes_in=1e9, bytes_out=1e6, compute_s=1320.0)
        assert plan.bus_fraction_serial < 0.01
        assert plan.overlapped_s == pytest.approx(plan.compute_s, rel=0.02)

    def test_transfer_bound_regime(self):
        plan = offload_plan(XEON_PHI_5110P, bytes_in=60e9, bytes_out=1e6, compute_s=0.5)
        assert plan.bus_fraction_serial > 0.9

    def test_overlap_benefit_positive_when_balanced(self):
        plan = offload_plan(XEON_PHI_5110P, bytes_in=6e9, bytes_out=0.0, compute_s=1.0)
        assert plan.overlap_benefit > 0.2

    def test_host_machine_rejected(self):
        with pytest.raises(ValueError):
            offload_plan(XEON_E5_2670_DUAL, 1e9, 1e6, 10.0)

    def test_invalid_volumes(self):
        with pytest.raises(ValueError):
            offload_plan(XEON_PHI_5110P, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            offload_plan(XEON_PHI_5110P, 1.0, 0.0, 1.0, n_chunks=0)


class TestCalibrate:
    def test_measures_positive_rate(self):
        cal = calibrate_host(m_samples=128, tile=8, repeats=1)
        assert cal.pairs_per_second > 0
        assert cal.gflops > 0

    def test_projection_scales_quadratically(self):
        cal = calibrate_host(m_samples=128, tile=8, repeats=1)
        t1 = project_runtime(cal, 1000)
        t2 = project_runtime(cal, 2000)
        assert t2 / t1 == pytest.approx((2000 * 1999) / (1000 * 999), rel=1e-6)

    def test_projection_scales_with_samples(self):
        cal = calibrate_host(m_samples=128, tile=8, repeats=1)
        assert project_runtime(cal, 500, m_samples=256) == pytest.approx(
            2 * project_runtime(cal, 500, m_samples=128)
        )

    def test_invalid_args(self):
        cal = calibrate_host(m_samples=64, tile=8, repeats=1)
        with pytest.raises(ValueError):
            project_runtime(cal, 1)
        with pytest.raises(ValueError):
            calibrate_host(repeats=0)
