"""Tests for repro.data.io."""

import numpy as np
import pytest

from repro.data.datasets import toy
from repro.data.io import (
    load_dataset,
    read_edge_list,
    read_expression_tsv,
    save_dataset,
    write_edge_list,
    write_expression_tsv,
)


class TestExpressionTsv:
    def test_roundtrip(self, tmp_path):
        ds = toy(n_genes=5, m_samples=8)
        path = tmp_path / "expr.tsv"
        write_expression_tsv(ds, path)
        back = read_expression_tsv(path)
        assert back.genes == ds.genes
        assert np.allclose(back.expression, ds.expression, rtol=1e-5)
        assert back.truth is None

    def test_header_format(self, tmp_path):
        ds = toy(n_genes=2, m_samples=3)
        path = tmp_path / "expr.tsv"
        write_expression_tsv(ds, path)
        header = path.read_text().splitlines()[0]
        assert header.split("\t") == ["gene", "S0000", "S0001", "S0002"]

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("gene\tS0\tS1\ng1\t1.0\n")
        with pytest.raises(ValueError, match="columns"):
            read_expression_tsv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("gene\tS0\ng1\tNaNope\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_expression_tsv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_expression_tsv(path)

    def test_no_rows_rejected(self, tmp_path):
        path = tmp_path / "hdr.tsv"
        path.write_text("gene\tS0\n")
        with pytest.raises(ValueError, match="no gene rows"):
            read_expression_tsv(path)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        edges = [("a", "b", 0.5), ("b", "c", 0.25)]
        path = tmp_path / "edges.tsv"
        write_edge_list(edges, path)
        back = read_edge_list(path)
        assert back == [("a", "b", 0.5), ("b", "c", 0.25)]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\t0.5\n")
        with pytest.raises(ValueError, match="header"):
            read_edge_list(path)

    def test_wrong_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("gene_a\tgene_b\tmi\na\tb\n")
        with pytest.raises(ValueError, match="3 columns"):
            read_edge_list(path)

    def test_empty_edge_list(self, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_list([], path)
        assert read_edge_list(path) == []


class TestDatasetNpz:
    def test_roundtrip_with_truth(self, tmp_path):
        ds = toy(n_genes=8, m_samples=12)
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        back = load_dataset(path)
        assert np.array_equal(back.expression, ds.expression)
        assert back.genes == ds.genes
        assert np.array_equal(back.truth.edges, ds.truth.edges)
        assert np.allclose(back.truth.strengths, ds.truth.strengths)

    def test_roundtrip_without_truth(self, tmp_path):
        ds = toy(n_genes=4, m_samples=6)
        ds.truth = None
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        assert load_dataset(path).truth is None
