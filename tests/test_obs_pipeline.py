"""Integration tests: observability wired through engines, drivers, pipeline, CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.bspline import weight_tensor
from repro.core.checkpoint import mi_matrix_checkpointed
from repro.core.exact import exact_mi_pvalues
from repro.core.mi_matrix import mi_matrix
from repro.core.outofcore import build_weight_store, mi_matrix_outofcore
from repro.core.pipeline import TingeConfig, TingePipeline
from repro.obs import (
    Tracer,
    counter_total,
    load_events,
    pairs_per_second,
    phase_breakdown,
    span_events,
    worker_task_counts,
    write_jsonl,
)
from repro.parallel.engine import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    ThreadEngine,
)


@pytest.fixture(scope="module")
def weights():
    rng = np.random.default_rng(11)
    return weight_tensor(rng.normal(size=(24, 90)), bins=8, order=3)


def _engines():
    return [
        SerialEngine(),
        ThreadEngine(n_workers=2),
        ProcessEngine(n_workers=2),
        SharedMemoryEngine(n_workers=2),
    ]


class TestEngineWorkerMetrics:
    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_map_stats_account_for_every_task(self, engine):
        tracer = Tracer()
        engine.tracer = tracer
        results = engine.map(lambda x: x * x, list(range(7)))
        assert results == [x * x for x in range(7)]
        stats = engine.last_map_stats
        assert stats.n_tasks == 7
        assert sum(stats.task_counts().values()) == 7
        assert 1 <= stats.n_workers <= 2
        assert stats.busy_seconds >= 0.0
        spans = tracer.find_spans("engine_map")
        assert len(spans) == 1
        assert spans[0].metadata["worker_tasks"] == stats.task_counts()
        assert tracer.counters["engine_tasks"] == 7.0

    @pytest.mark.parametrize(
        "engine",
        [e for e in _engines() if hasattr(e, "map_into")],
        ids=lambda e: type(e).__name__,
    )
    def test_map_into_stats(self, engine):
        out = np.zeros(5, dtype=np.float64)
        engine.tracer = Tracer()
        engine.map_into(lambda arr, i: arr.__setitem__(i, float(i)), range(5), out)
        assert np.array_equal(out, np.arange(5.0))
        assert engine.last_map_stats.n_tasks == 5
        assert sum(engine.last_map_stats.task_counts().values()) == 5

    def test_process_engine_counts_transported_bytes(self):
        engine = ProcessEngine(n_workers=2)
        tracer = Tracer()
        engine.tracer = tracer
        blocks = engine.map(lambda i: np.zeros((4, 4)), range(3))
        assert len(blocks) == 3
        assert tracer.counters["bytes_transported"] == 3 * 4 * 4 * 8


class TestMiMatrixObservability:
    @pytest.mark.parametrize("engine", [None] + _engines(),
                             ids=lambda e: type(e).__name__ if e else "none")
    def test_counters_and_result_invariant(self, weights, engine):
        ref = mi_matrix(weights, tile=6)
        tracer = Tracer()
        calls = []
        res = mi_matrix(weights, tile=6, engine=engine, tracer=tracer,
                        progress=lambda d, t: calls.append((d, t)))
        assert np.array_equal(res.mi, ref.mi)
        assert tracer.counters["tiles_done"] == res.n_tiles
        assert tracer.counters["pairs_done"] == res.n_pairs
        assert calls[-1] == (res.n_tiles, res.n_tiles)
        # Progress is cumulative and strictly increasing.
        assert all(calls[i][0] < calls[i + 1][0] for i in range(len(calls) - 1))
        in_process = engine is None or getattr(engine, "in_process", False)
        if in_process:
            assert len(calls) == res.n_tiles  # per-tile reporting
        assert len(tracer.find_spans("mi_matrix")) == 1


class TestExactObservability:
    def test_counters_and_result_invariant(self, weights):
        ref = exact_mi_pvalues(weights, n_permutations=5, tile=6, seed=3)
        for engine in (None, ThreadEngine(n_workers=2), ProcessEngine(n_workers=2)):
            tracer = Tracer()
            calls = []
            res = exact_mi_pvalues(weights, n_permutations=5, tile=6, seed=3,
                                   engine=engine, tracer=tracer,
                                   progress=lambda d, t: calls.append((d, t)))
            assert np.array_equal(res.pvalues, ref.pvalues)
            assert np.array_equal(res.mi, ref.mi)
            assert tracer.counters["tiles_done"] > 0
            assert calls[-1][0] == calls[-1][1]
            assert len(tracer.find_spans("exact_mi")) == 1


class TestDriverObservability:
    def test_checkpoint_progress_and_counters(self, weights, tmp_path):
        tracer = Tracer()
        calls = []
        mi = mi_matrix_checkpointed(weights, tmp_path / "ck", tile=6,
                                    progress=lambda d, t: calls.append((d, t)),
                                    tracer=tracer)
        assert np.array_equal(mi, mi_matrix(weights, tile=6).mi)
        assert calls[-1][0] == calls[-1][1] == len(calls)
        assert tracer.counters["rows_done"] == len(calls)
        assert len(tracer.find_spans("checkpoint_row")) == len(calls)

    def test_checkpoint_resume_reports_done_rows(self, weights, tmp_path):
        ck = tmp_path / "ck"
        assert mi_matrix_checkpointed(weights, ck, tile=6,
                                      interrupt_after_rows=1) is None
        calls = []
        mi = mi_matrix_checkpointed(weights, ck, tile=6,
                                    progress=lambda d, t: calls.append((d, t)))
        assert mi is not None
        assert calls[0][0] == 1  # the resumed row counts as already done

    def test_outofcore_counters(self, weights, tmp_path):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(16, 60))
        wpath = build_weight_store(data, tmp_path / "w", bins=7)
        tracer = Tracer()
        calls = []
        out = mi_matrix_outofcore(wpath, tmp_path / "mi", tile=5, tracer=tracer,
                                  progress=lambda d, t: calls.append((d, t)))
        mi = np.load(out)
        assert mi.shape == (16, 16)
        assert tracer.counters["tiles_done"] == calls[-1][1]
        assert calls[-1][0] == calls[-1][1]
        assert len(tracer.find_spans("mi_outofcore")) == 1


class TestPipelineTracing:
    def test_timings_equal_span_walls(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 80))
        pipe = TingePipeline(TingeConfig(n_permutations=5, n_null_pairs=30))
        result = pipe.run(data)
        assert set(result.timings) == {"preprocess", "weights", "null", "mi",
                                       "threshold"}
        for phase, seconds in result.timings.items():
            spans = pipe.tracer.find_spans(phase)
            assert len(spans) == 1
            assert abs(spans[0].wall - seconds) <= 1e-3
        assert len(pipe.tracer.find_spans("reconstruct")) == 1

    def test_engine_inherits_pipeline_tracer(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(16, 70))
        engine = ThreadEngine(n_workers=2)
        pipe = TingePipeline(TingeConfig(n_permutations=5, n_null_pairs=20),
                             engine=engine)
        pipe.run(data)
        assert engine.tracer is pipe.tracer
        assert pipe.tracer.counters["engine_tasks"] > 0

    def test_exact_mode_traced(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(12, 60))
        pipe = TingePipeline(TingeConfig(testing="exact", n_permutations=10,
                                         correction="none"))
        result = pipe.run(data)
        assert set(result.timings) == {"preprocess", "weights", "mi", "threshold"}
        for phase, seconds in result.timings.items():
            assert abs(pipe.tracer.find_spans(phase)[0].wall - seconds) <= 1e-3

    def test_trace_file_reconstructs_run(self, tmp_path):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(30, 90))
        tracer = Tracer()
        pipe = TingePipeline(TingeConfig(n_permutations=5, n_null_pairs=30),
                             engine=ThreadEngine(n_workers=2), tracer=tracer)
        result = pipe.run(data)
        events = load_events(write_jsonl(tracer, tmp_path / "run.jsonl"))

        breakdown = phase_breakdown(events)
        assert set(breakdown) == set(result.timings)
        for phase, seconds in result.timings.items():
            assert breakdown[phase] == pytest.approx(seconds, abs=1e-3)
        assert pairs_per_second(events) > 0
        assert counter_total(events, "pairs_done") == 30 * 29 / 2
        workers = worker_task_counts(events)
        assert sum(workers.values()) > 0
        # Engine map spans nest under traced phases.
        spans = {s["id"]: s for s in span_events(events)}
        for em in span_events(events, "engine_map"):
            assert em["parent"] in spans


class TestCliTrace:
    def test_reconstruct_writes_trace_artifacts(self, tmp_path, capsys):
        ds = tmp_path / "ds.npz"
        assert main(["generate", "--genes", "25", "--samples", "70",
                     "--out", str(ds)]) == 0
        trace = tmp_path / "run.jsonl"
        chrome = tmp_path / "run_chrome.json"
        rc = main(["reconstruct", str(ds), "--out", str(tmp_path / "edges.tsv"),
                   "--permutations", "5", "--null-pairs", "30",
                   "--trace", str(trace), "--chrome-trace", str(chrome),
                   "--progress"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "chrome trace:" in out
        events = load_events(trace)
        assert set(phase_breakdown(events)) == {"preprocess", "weights", "null",
                                                "mi", "threshold"}
        assert pairs_per_second(events) > 0
        assert chrome.exists()
