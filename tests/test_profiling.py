"""Tests for repro.bench.profiling."""

import numpy as np
import pytest

from repro import TingeConfig
from repro.bench.profiling import profile_callable, profile_pipeline


class TestProfileCallable:
    def test_result_passed_through(self):
        report = profile_callable(lambda a, b: a + b, 2, 3)
        assert report.result == 5

    def test_hotspots_identify_heavy_function(self):
        def heavy():
            total = 0.0
            for i in range(200_000):
                total += i * 0.5
            return total

        def workload():
            heavy()
            return sum(range(10))

        report = profile_callable(workload, top=10)
        names = [name for name, _ in report.hotspots]
        assert any("heavy" in name for name in names)

    def test_text_table_present(self):
        report = profile_callable(sorted, list(range(100)))
        assert "cumulative" in report.text

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("profiled failure")

        with pytest.raises(RuntimeError, match="profiled failure"):
            profile_callable(boom)

    def test_top_validation(self):
        with pytest.raises(ValueError):
            profile_callable(lambda: None, top=0)


class TestProfilePipeline:
    def test_profiles_reconstruction(self, rng):
        data = rng.normal(size=(15, 100))
        report = profile_pipeline(data, config=TingeConfig(n_permutations=5))
        assert report.result.network.n_genes == 15
        assert report.total_seconds > 0
        # The MI/entropy machinery should appear among the hotspots.
        joined = " ".join(name for name, _ in report.hotspots)
        assert "repro" in joined or "einsum" in joined or "tensordot" in joined
