"""Second round of property-based tests: comm, consensus, offload, exact.

Complements ``test_properties.py`` with invariants for the modules added
after it: the simulated MPI collectives, the offload schedule, the fused
exact kernel, and the network-comparison metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import compare_networks
from repro.cluster.comm import LockstepComm
from repro.core.bspline import weight_tensor
from repro.core.exact import exact_mi_pvalues
from repro.core.network import GeneNetwork
from repro.core.threshold import top_k_adjacency
from repro.machine.offload import offload_plan
from repro.machine.spec import XEON_PHI_5110P


class TestCommProperties:
    @given(p=st.integers(1, 32), size=st.integers(1, 50), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_equals_serial_sum(self, p, size, seed):
        rng = np.random.default_rng(seed)
        parts = [rng.normal(size=size) for _ in range(p)]
        comm = LockstepComm(p)
        out = comm.allreduce(parts)
        expected = np.sum(parts, axis=0)
        for o in out:
            assert np.allclose(o, expected)

    @given(p=st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_allgather_volume_formula(self, p):
        comm = LockstepComm(p)
        slabs = [np.zeros(10, dtype=np.float64) for _ in range(p)]
        comm.allgather(slabs)
        assert comm.meter.volume_bytes == (p - 1) * p * 80

    @given(p=st.integers(2, 16), root=st.integers(0, 15))
    @settings(max_examples=20, deadline=None)
    def test_gather_only_root_receives(self, p, root):
        root = root % p
        comm = LockstepComm(p)
        out = comm.gather(list(range(p)), root=root)
        for r in range(p):
            if r == root:
                assert out[r] == list(range(p))
            else:
                assert out[r] is None


class TestOffloadProperties:
    @given(
        bytes_in=st.floats(1e3, 1e11),
        compute=st.floats(1e-3, 1e4),
        chunks=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_bounds(self, bytes_in, compute, chunks):
        plan = offload_plan(XEON_PHI_5110P, bytes_in, 1e5, compute, n_chunks=chunks)
        # Overlapped schedule is bounded by the serial one and below by the
        # slower of the two resources.
        assert plan.overlapped_s <= plan.serial_s + 1e-12
        assert plan.overlapped_s >= max(plan.compute_s, plan.transfer_in_s) - 1e-9
        assert 0.0 <= plan.overlap_benefit <= 1.0
        assert 0.0 <= plan.bus_fraction_serial <= 1.0


class TestExactProperties:
    @given(seed=st.integers(0, 30), q=st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_pvalue_grid_property(self, seed, q):
        """Exact p-values live exactly on the add-one grid k/(q+1)."""
        rng = np.random.default_rng(seed)
        w = weight_tensor(rng.normal(size=(5, 40)))
        res = exact_mi_pvalues(w, n_permutations=q, seed=seed)
        iu = np.triu_indices(5, k=1)
        scaled = res.pvalues[iu] * (q + 1)
        assert np.allclose(scaled, np.round(scaled))
        assert res.pvalues[iu].min() >= 1.0 / (q + 1) - 1e-12


class TestCompareProperties:
    @given(seed=st.integers(0, 100), n=st.integers(3, 10),
           ka=st.integers(0, 10), kb=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_comparison_symmetry_and_bounds(self, seed, n, ka, kb):
        rng = np.random.default_rng(seed)
        s = rng.uniform(size=(n, n))
        s = (s + s.T) / 2
        np.fill_diagonal(s, 0)
        genes = [f"g{i}" for i in range(n)]
        s2 = rng.uniform(size=(n, n))
        s2 = (s2 + s2.T) / 2
        np.fill_diagonal(s2, 0)
        a = GeneNetwork(top_k_adjacency(s, ka), s, genes)
        b = GeneNetwork(top_k_adjacency(s2, kb), s2, genes)
        ab = compare_networks(a, b)
        ba = compare_networks(b, a)
        assert ab.jaccard == ba.jaccard
        assert ab.hamming == ba.hamming
        assert (ab.n_only_a, ab.n_only_b) == (ba.n_only_b, ba.n_only_a)
        assert 0.0 <= ab.jaccard <= 1.0
