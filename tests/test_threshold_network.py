"""Tests for repro.core.threshold and repro.core.network."""

import numpy as np
import pytest

from repro.core.network import GeneNetwork
from repro.core.permutation import NullDistribution
from repro.core.threshold import fdr_adjacency, threshold_adjacency, top_k_adjacency


def make_mi(n=5, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.uniform(0, 1, size=(n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestThresholdAdjacency:
    def test_strict_threshold(self):
        mi = make_mi()
        adj = threshold_adjacency(mi, 0.5)
        iu = np.triu_indices(5, 1)
        assert np.array_equal(adj[iu], mi[iu] > 0.5)

    def test_no_self_loops(self):
        adj = threshold_adjacency(make_mi(), -1.0)
        assert not adj.diagonal().any()

    def test_symmetric(self):
        adj = threshold_adjacency(make_mi(), 0.3)
        assert np.array_equal(adj, adj.T)

    def test_infinite_threshold_empty(self):
        assert threshold_adjacency(make_mi(), np.inf).sum() == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            threshold_adjacency(np.zeros((2, 3)), 0.1)


class TestFdrAdjacency:
    def test_strong_edges_survive(self):
        mi = np.zeros((4, 4))
        mi[0, 1] = mi[1, 0] = 5.0
        null = NullDistribution(
            mis=np.random.default_rng(0).uniform(0, 1, 500), n_permutations=10,
            n_pairs_sampled=50,
        )
        adj, pvals = fdr_adjacency(mi, null, alpha=0.05)
        assert adj[0, 1] and adj[1, 0]
        assert adj.sum() == 2
        assert pvals[0, 1] < 0.01
        assert pvals[2, 3] == pytest.approx(1.0)

    def test_pvalue_matrix_symmetric(self):
        mi = make_mi()
        null = NullDistribution(np.random.default_rng(1).uniform(0, 2, 300), 10, 30)
        _, pvals = fdr_adjacency(mi, null)
        assert np.array_equal(pvals, pvals.T)
        assert np.all(np.diag(pvals) == 1.0)


class TestTopKAdjacency:
    def test_exact_edge_count(self):
        adj = top_k_adjacency(make_mi(8), 5)
        assert adj.sum() == 10  # 5 undirected edges

    def test_keeps_largest(self):
        mi = np.zeros((3, 3))
        mi[0, 1] = mi[1, 0] = 0.9
        mi[1, 2] = mi[2, 1] = 0.1
        adj = top_k_adjacency(mi, 1)
        assert adj[0, 1] and not adj[1, 2]

    def test_k_zero(self):
        assert top_k_adjacency(make_mi(), 0).sum() == 0

    def test_k_exceeds_pairs(self):
        adj = top_k_adjacency(make_mi(4), 100)
        assert adj.sum() == 12  # all 6 pairs

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            top_k_adjacency(make_mi(), -1)


class TestGeneNetwork:
    @pytest.fixture
    def net(self):
        mi = make_mi(4, seed=1)
        adj = top_k_adjacency(mi, 3)
        return GeneNetwork(adjacency=adj, weights=mi, genes=["a", "b", "c", "d"])

    def test_counts(self, net):
        assert net.n_genes == 4
        assert net.n_edges == 3
        assert net.density == pytest.approx(0.5)

    def test_edge_list_sorted_desc(self, net):
        edges = net.edge_list()
        assert len(edges) == 3
        weights = [w for _, _, w in edges]
        assert weights == sorted(weights, reverse=True)

    def test_edge_set_names(self, net):
        for a, b in net.edge_set():
            assert a in net.genes and b in net.genes

    def test_degrees_sum_twice_edges(self, net):
        assert net.degrees().sum() == 2 * net.n_edges

    def test_neighbors_by_name_and_index(self, net):
        edges = net.edge_set()
        for g in net.genes:
            for nb in net.neighbors(g):
                pair = (g, nb) if g <= nb else (nb, g)
                assert pair in edges
        assert net.neighbors(0) == net.neighbors("a")

    def test_to_networkx(self, net):
        g = net.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3

    def test_subnetwork(self, net):
        sub = net.subnetwork(["a", "b"])
        assert sub.n_genes == 2
        assert sub.adjacency[0, 1] == net.adjacency[0, 1]

    def test_save_load_roundtrip(self, net, tmp_path):
        path = tmp_path / "net.npz"
        net.save(path)
        back = GeneNetwork.load(path)
        assert np.array_equal(back.adjacency, net.adjacency)
        assert np.allclose(back.weights, net.weights)
        assert back.genes == net.genes

    def test_rejects_asymmetric(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError):
            GeneNetwork(adj, np.zeros((3, 3)), ["x", "y", "z"])

    def test_rejects_self_loop(self):
        adj = np.eye(3, dtype=bool)
        with pytest.raises(ValueError):
            GeneNetwork(adj, np.zeros((3, 3)), ["x", "y", "z"])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            GeneNetwork(np.zeros((2, 2), dtype=bool), np.zeros((3, 3)), ["x", "y"])
