"""Gap-filling edge-case tests across modules.

Covers branches the mainline tests don't reach: degenerate inputs, print
wrappers, boundary indices, and rarely-taken options.
"""

import numpy as np
import pytest

from repro.analysis.accuracy import aupr, pr_curve
from repro.bench.reporting import print_series, print_table
from repro.core.bspline import packed_weights, unpack_weights
from repro.core.consensus import bootstrap_networks
from repro.core.network import GeneNetwork
from repro.data.grn import GroundTruthNetwork
from repro.machine.costmodel import KernelProfile
from repro.machine.simulator import MachineSimulator, simulate_workload, speedup_curve
from repro.machine.spec import XEON_PHI_5110P
from repro.machine.trace import render_gantt
from repro.parallel.engine import SerialEngine
from repro.parallel.reductions import linear_reduce, tree_reduce
from repro import TingeConfig


class TestPrintWrappers:
    def test_print_table(self, capsys):
        print_table([{"a": 1}], title="T")
        out = capsys.readouterr().out
        assert "T" in out and "a" in out

    def test_print_series(self, capsys):
        print_series([1, 2], [3, 4], "x", "y", title="S")
        out = capsys.readouterr().out
        assert "S" in out and "4" in out


class TestNetworkEdges:
    def test_neighbors_invalid_index(self):
        adj = np.zeros((2, 2), dtype=bool)
        net = GeneNetwork(adj, adj.astype(float), ["a", "b"])
        with pytest.raises(IndexError):
            net.neighbors(5)

    def test_neighbors_unknown_name(self):
        adj = np.zeros((2, 2), dtype=bool)
        net = GeneNetwork(adj, adj.astype(float), ["a", "b"])
        with pytest.raises(ValueError):
            net.neighbors("zz")

    def test_density_of_single_pair(self):
        adj = np.zeros((2, 2), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        net = GeneNetwork(adj, adj.astype(float), ["a", "b"])
        assert net.density == 1.0

    def test_edge_list_empty(self):
        adj = np.zeros((3, 3), dtype=bool)
        net = GeneNetwork(adj, adj.astype(float), list("abc"))
        assert net.edge_list() == []
        assert net.edge_set() == set()


class TestAccuracyEdges:
    def test_pr_curve_no_true_edges(self):
        truth = GroundTruthNetwork(n_genes=3, edges=np.empty((0, 2), dtype=int),
                                   strengths=np.empty(0))
        scores = np.zeros((3, 3))
        recall, precision = pr_curve(scores, truth)
        assert np.all(recall == 0.0)
        assert aupr(scores, truth) == 0.0


class TestPackedWeightsEdges:
    def test_all_zero_row_packs_safely(self):
        # A zero row (invalid basis output, but the packer must not crash).
        w = np.zeros((2, 6))
        w[1, 2:5] = [0.25, 0.5, 0.25]
        values, first = packed_weights(w, 3)
        back = unpack_weights(values, first, 6)
        assert np.allclose(back, w)


class TestReductionsEdges:
    def test_non_commutative_op_linear_order(self):
        # Linear reduce must respect left-to-right order.
        out = linear_reduce(["a", "b", "c"], lambda x, y: x + y)
        assert out == "abc"

    def test_tree_reduce_associative_string(self):
        # String concat is associative (not commutative): tree == linear.
        parts = list("abcdefg")
        assert tree_reduce(parts, lambda x, y: x + y) == "abcdefg"


class TestSimulatorEdges:
    def test_speedup_curve_monotone(self):
        curve = speedup_curve(XEON_PHI_5110P, 200, 256, [1, 2, 4])
        assert curve["speedup"][0] == pytest.approx(1.0)
        assert curve["speedup"][2] > curve["speedup"][1]

    def test_two_gene_workload(self):
        res = simulate_workload(XEON_PHI_5110P, 2, 64, n_threads=1)
        assert res.makespan > 0
        assert res.n_tiles == 1

    def test_gantt_clips_threads(self):
        sim = MachineSimulator(XEON_PHI_5110P, KernelProfile(m_samples=128))
        res = sim.run(100, 12, record_trace=True)
        out = render_gantt(res, width=30, max_threads=4)
        assert len(out.splitlines()) == 5  # header + 4 of the 12 threads


class TestConsensusEdges:
    def test_engine_forwarded(self, rng):
        data = rng.normal(size=(8, 60))
        res = bootstrap_networks(
            data, config=TingeConfig(n_permutations=5),
            n_rounds=2, seed=0, engine=SerialEngine(),
        )
        assert res.n_rounds == 2

    def test_full_fraction_uses_all_samples(self, rng):
        data = rng.normal(size=(6, 40))
        a = bootstrap_networks(data, config=TingeConfig(n_permutations=5),
                               n_rounds=2, subsample_fraction=1.0, seed=1)
        assert a.frequency.shape == (6, 6)

    def test_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            bootstrap_networks(rng.normal(size=(4, 30)), n_rounds=1,
                               subsample_fraction=0.0)


class TestExactBonferroniSuccessPath:
    def test_enough_permutations_pass_guard(self, rng):
        from repro import reconstruct_network

        x = rng.normal(size=120)
        data = np.vstack([x, x + 0.05 * rng.normal(size=120), rng.normal(size=(2, 120))])
        # 6 pairs at alpha 0.05 -> need q + 1 >= 120; use q = 150.
        cfg = TingeConfig(testing="exact", correction="bonferroni",
                          alpha=0.05, n_permutations=150)
        res = reconstruct_network(data, genes=list("abcd"), config=cfg)
        assert res.network.adjacency[0, 1]
