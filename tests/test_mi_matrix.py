"""Tests for repro.core.mi_matrix: the tiled all-pairs driver."""

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.mi import mi_bspline_pair
from repro.core.mi_matrix import compute_tile, mi_matrix, mi_pairs
from repro.core.tiling import Tile
from repro.parallel.engine import SerialEngine, ThreadEngine


@pytest.fixture(scope="module")
def weights12():
    rng = np.random.default_rng(99)
    return weight_tensor(rng.normal(size=(12, 80)))


class TestMiMatrix:
    def test_symmetric_zero_diagonal(self, weights12):
        res = mi_matrix(weights12, tile=4)
        assert np.array_equal(res.mi, res.mi.T)
        assert np.all(np.diag(res.mi) == 0.0)

    def test_matches_pairwise_kernel(self, weights12):
        res = mi_matrix(weights12, tile=5)
        for i in range(12):
            for j in range(i + 1, 12):
                assert res.mi[i, j] == pytest.approx(
                    mi_bspline_pair(weights12[i], weights12[j]), rel=1e-10, abs=1e-12
                )

    @pytest.mark.parametrize("tile", [1, 2, 3, 7, 64])
    def test_tile_size_invariance(self, weights12, tile):
        ref = mi_matrix(weights12, tile=4).mi
        assert np.allclose(mi_matrix(weights12, tile=tile).mi, ref)

    def test_default_tile(self, weights12):
        res = mi_matrix(weights12)
        assert res.n_genes == 12
        assert res.n_pairs == 66

    def test_bookkeeping(self, weights12):
        res = mi_matrix(weights12, tile=4)
        assert res.n_tiles == 6  # 3x3 upper-tri block grid
        assert res.marginal_entropy.shape == (12,)

    def test_thread_engine_identical(self, weights12):
        ref = mi_matrix(weights12, tile=4).mi
        eng = ThreadEngine(n_workers=3)
        assert np.allclose(mi_matrix(weights12, tile=4, engine=eng).mi, ref)

    def test_serial_engine_identical(self, weights12):
        ref = mi_matrix(weights12, tile=4).mi
        assert np.allclose(mi_matrix(weights12, tile=4, engine=SerialEngine()).mi, ref)

    def test_base_bits(self, weights12):
        nat = mi_matrix(weights12, tile=4).mi
        bit = mi_matrix(weights12, tile=4, base="bit").mi
        assert np.allclose(bit, nat / np.log(2))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            mi_matrix(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            mi_matrix(np.zeros((1, 4, 10)))

    def test_nonnegative(self, weights12):
        assert (mi_matrix(weights12).mi >= 0).all()


class TestComputeTile:
    def test_diagonal_tile_masked(self, weights12):
        from repro.core.entropy import marginal_entropies

        h = marginal_entropies(weights12)
        block = compute_tile(weights12, h, Tile(0, 4, 0, 4))
        assert np.all(block[np.tril_indices(4)] == 0.0)

    def test_off_diagonal_unmasked(self, weights12):
        from repro.core.entropy import marginal_entropies

        h = marginal_entropies(weights12)
        block = compute_tile(weights12, h, Tile(0, 3, 6, 9))
        assert (block > 0).any() or (block >= 0).all()
        assert block.shape == (3, 3)


class TestMiPairs:
    def test_matches_matrix(self, weights12):
        full = mi_matrix(weights12, tile=4).mi
        pairs = np.array([[0, 1], [2, 7], [10, 11], [0, 11]])
        vals = mi_pairs(weights12, pairs)
        for (i, j), v in zip(pairs, vals):
            assert v == pytest.approx(full[i, j], rel=1e-10, abs=1e-12)

    def test_batching_invariance(self, weights12):
        pairs = np.array([[i, j] for i in range(12) for j in range(i + 1, 12)])
        a = mi_pairs(weights12, pairs, batch=5)
        b = mi_pairs(weights12, pairs, batch=1000)
        assert np.allclose(a, b)

    def test_empty_pairs(self, weights12):
        assert mi_pairs(weights12, np.empty((0, 2), dtype=int)).size == 0

    def test_rejects_out_of_range(self, weights12):
        with pytest.raises(ValueError):
            mi_pairs(weights12, np.array([[0, 99]]))

    def test_rejects_bad_shape(self, weights12):
        with pytest.raises(ValueError):
            mi_pairs(weights12, np.array([0, 1, 2]))


class TestProgressCallback:
    def test_serial_progress_called_per_tile(self, weights12):
        calls = []
        mi_matrix(weights12, tile=4, progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (len(calls), len(calls))
        assert [d for d, _ in calls] == list(range(1, len(calls) + 1))

    def test_in_process_engine_progress_called_per_tile(self, weights12):
        # Regression: engine paths used to fire progress once, at the end.
        for engine in (SerialEngine(), ThreadEngine(n_workers=2)):
            calls = []
            mi_matrix(weights12, tile=4, engine=engine,
                      progress=lambda d, t: calls.append((d, t)))
            assert calls[-1] == (6, 6)
            assert sorted(d for d, _ in calls) == list(range(1, 7))

    def test_fork_engine_progress_called_per_batch(self, weights12):
        from repro.parallel.engine import ProcessEngine

        calls = []
        mi_matrix(weights12, tile=4, engine=ProcessEngine(n_workers=2),
                  progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (6, 6)
        assert all(calls[i][0] < calls[i + 1][0] for i in range(len(calls) - 1))

    def test_no_progress_by_default(self, weights12):
        mi_matrix(weights12, tile=4)  # must not raise
