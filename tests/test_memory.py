"""Tests for repro.machine.memory: capacity planning."""

import pytest

from repro.machine.costmodel import KernelProfile
from repro.machine.memory import memory_plan
from repro.machine.spec import BLUEGENE_L_1024, XEON_E5_2670_DUAL, XEON_PHI_5110P

ARABIDOPSIS = KernelProfile(m_samples=3137, bins=10, order=3, itemsize=4)


class TestMemoryPlan:
    def test_whole_genome_fits_the_phi(self):
        """The paper's feasibility precondition: 15,575 genes fit in the
        Phi's 8 GB (dense float32 weights are ~1.95 GB)."""
        plan = memory_plan(XEON_PHI_5110P, 15575, ARABIDOPSIS,
                           n_permutations_stored=30)
        assert plan.strategy == "dense-resident"
        assert plan.weights_dense_bytes == pytest.approx(
            15575 * 3137 * 10 * 4, rel=1e-12)
        assert plan.utilization < 0.5

    def test_packed_smaller_than_dense(self):
        plan = memory_plan(XEON_PHI_5110P, 1000, ARABIDOPSIS)
        assert plan.weights_packed_bytes < plan.weights_dense_bytes

    def test_tight_memory_falls_back_to_packed(self):
        # 100k genes: dense ~12.5 GB exceeds the Phi; packed ~5 GB fits.
        plan = memory_plan(XEON_PHI_5110P, 100_000, ARABIDOPSIS)
        assert plan.strategy == "packed-resident"

    def test_out_of_core_when_nothing_fits(self):
        plan = memory_plan(BLUEGENE_L_1024.node, 100_000, ARABIDOPSIS)
        assert plan.strategy == "out-of-core"

    def test_float64_doubles_weights(self):
        p32 = memory_plan(XEON_E5_2670_DUAL, 5000, ARABIDOPSIS)
        p64 = memory_plan(
            XEON_E5_2670_DUAL, 5000,
            KernelProfile(m_samples=3137, bins=10, order=3, itemsize=8),
        )
        assert p64.weights_dense_bytes == pytest.approx(2 * p32.weights_dense_bytes)

    def test_permutation_storage_is_indices_only(self):
        plan = memory_plan(XEON_PHI_5110P, 15575, ARABIDOPSIS,
                           n_permutations_stored=30)
        # 30 index vectors of 3137 int32 ~ 376 KB: negligible by design.
        assert plan.permutations_bytes == 30 * 3137 * 4
        assert plan.permutations_bytes < plan.weights_dense_bytes / 1000

    def test_resident_bytes_match_strategy(self):
        plan = memory_plan(XEON_PHI_5110P, 15575, ARABIDOPSIS)
        assert plan.resident_bytes >= plan.weights_dense_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_plan(XEON_PHI_5110P, 0, ARABIDOPSIS)
        with pytest.raises(ValueError):
            memory_plan(XEON_PHI_5110P, 10, ARABIDOPSIS, headroom=0.0)
        with pytest.raises(ValueError):
            memory_plan(XEON_PHI_5110P, 10, ARABIDOPSIS, expected_edge_density=2.0)
