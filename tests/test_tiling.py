"""Tests for repro.core.tiling: coverage, counts, tile geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import (
    Tile,
    default_tile_size,
    fused_tile_size,
    pair_count,
    tile_grid,
)


class TestTile:
    def test_off_diagonal_counts(self):
        t = Tile(0, 4, 8, 12)
        assert t.n_pairs == 16
        assert t.n_elements == 16
        assert not t.is_diagonal

    def test_diagonal_counts(self):
        t = Tile(4, 8, 4, 8)
        assert t.is_diagonal
        assert t.n_pairs == 6  # 4*3/2
        assert t.n_elements == 16

    def test_pair_mask_diagonal(self):
        t = Tile(0, 3, 0, 3)
        mask = t.pair_mask()
        assert mask.tolist() == [
            [False, True, True],
            [False, False, True],
            [False, False, False],
        ]

    def test_pair_mask_off_diagonal_full(self):
        t = Tile(0, 2, 5, 7)
        assert t.pair_mask().all()

    def test_rejects_below_diagonal(self):
        with pytest.raises(ValueError):
            Tile(5, 8, 0, 3)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Tile(3, 3, 4, 5)


class TestTileGrid:
    @pytest.mark.parametrize("n,tile", [(10, 3), (16, 4), (17, 4), (5, 10), (100, 7)])
    def test_covers_every_pair_once(self, n, tile):
        seen = np.zeros((n, n), dtype=int)
        for t in tile_grid(n, tile):
            mask = t.pair_mask()
            seen[t.i0 : t.i1, t.j0 : t.j1] += mask
        iu = np.triu_indices(n, k=1)
        assert np.all(seen[iu] == 1)
        assert seen.sum() == pair_count(n)

    def test_pair_totals(self):
        tiles = tile_grid(50, 8)
        assert sum(t.n_pairs for t in tiles) == pair_count(50)

    def test_no_empty_tiles(self):
        for t in tile_grid(33, 5):
            assert t.n_pairs > 0

    def test_tile_one(self):
        tiles = tile_grid(4, 1)
        assert len(tiles) == pair_count(4)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            tile_grid(1, 4)
        with pytest.raises(ValueError):
            tile_grid(10, 0)

    @given(n=st.integers(2, 60), tile=st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_coverage_property(self, n, tile):
        total = sum(t.n_pairs for t in tile_grid(n, tile))
        assert total == pair_count(n)


class TestPairCount:
    def test_values(self):
        assert pair_count(2) == 1
        assert pair_count(15575) == 15575 * 15574 // 2

    def test_zero_genes(self):
        assert pair_count(0) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            pair_count(-1)


class TestDefaultTileSize:
    def test_power_of_two_in_bounds(self):
        t = default_tile_size(3137, 10)
        assert t in (8, 16, 32, 64, 128, 256)

    def test_smaller_samples_bigger_tiles(self):
        assert default_tile_size(100, 10) >= default_tile_size(5000, 10)

    def test_minimum_is_8(self):
        assert default_tile_size(10**6, 10) == 8

    def test_cache_budget_respected(self):
        cache = 1 << 20
        t = default_tile_size(500, 10, itemsize=8, cache_bytes=cache)
        working = 2 * t * 500 * 10 * 8 + t * t * 100 * 8
        assert working <= cache or t == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_tile_size(0, 10)


class TestFusedTileSize:
    def test_power_of_two_in_bounds(self):
        t = fused_tile_size(256, 10)
        assert t in (8, 16, 32, 64, 128, 256)

    def test_smaller_samples_bigger_tiles(self):
        assert fused_tile_size(100, 10) >= fused_tile_size(5000, 10)

    def test_float32_tiles_at_least_as_big(self):
        assert fused_tile_size(512, 10, itemsize=4) >= fused_tile_size(512, 10)

    def test_cache_budget_respected(self):
        cache = 1 << 20
        t = fused_tile_size(500, 10, itemsize=8, cache_bytes=cache)
        working = 2 * t * 500 * 10 * 8 + 2 * t * t * 100 * 8
        assert working <= cache or t == 8


class TestAutotuneCacheConcurrency:
    """The sidecar update must merge, not overwrite (serve-daemon races)."""

    def test_concurrent_writers_keep_every_entry(self, tmp_path, monkeypatch):
        import threading

        from repro.core.tiling import _load_autotune_cache, _merge_autotune_entry

        path = tmp_path / "tiles.json"
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(path))
        n_writers, per_writer = 8, 5
        barrier = threading.Barrier(n_writers)

        def write(w: int) -> None:
            barrier.wait()
            for i in range(per_writer):
                _merge_autotune_entry(path, f"key-{w}-{i}", 16 * (w + 1))

        threads = [threading.Thread(target=write, args=(w,)) for w in range(n_writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache = _load_autotune_cache(path)
        assert len(cache) == n_writers * per_writer
        for w in range(n_writers):
            for i in range(per_writer):
                assert cache[f"key-{w}-{i}"] == 16 * (w + 1)

    def test_merge_preserves_existing_on_disk_state(self, tmp_path):
        import json

        from repro.core.tiling import _load_autotune_cache, _merge_autotune_entry

        path = tmp_path / "tiles.json"
        path.write_text(json.dumps({"other-host-key": 128}))
        _merge_autotune_entry(path, "my-key", 32)
        cache = _load_autotune_cache(path)
        assert cache == {"other-host-key": 128, "my-key": 32}
