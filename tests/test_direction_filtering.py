"""Tests for edge orientation (perturbation evidence) and gene filtering."""

import numpy as np
import pytest

from repro.analysis.direction import (
    DirectedEdge,
    knockout_response_zscores,
    orient_edges,
)
from repro.core.filtering import filter_genes
from repro.core.network import GeneNetwork
from repro.data.grn import scale_free_grn
from repro.data.perturbation import simulate_perturbations


@pytest.fixture(scope="module")
def panel():
    truth = scale_free_grn(25, n_regulators=3, mean_in_degree=2.0, seed=9)
    return truth, simulate_perturbations(
        truth, m_observational=150, replicates=20, noise_sd=0.15, seed=10
    )


class TestKnockoutZscores:
    def test_targets_respond(self, panel):
        truth, p = panel
        reg = int(truth.edges[0, 0])
        z = knockout_response_zscores(p, reg)
        targets = truth.edges[truth.edges[:, 0] == reg][:, 1]
        assert max(abs(z[t]) for t in targets) > 3.0

    def test_perturbed_gene_nan(self, panel):
        truth, p = panel
        reg = int(truth.edges[0, 0])
        assert np.isnan(knockout_response_zscores(p, reg)[reg])

    def test_unperturbed_gene_rejected(self, panel):
        _, p = panel
        with pytest.raises(ValueError, match="never perturbed"):
            knockout_response_zscores(p, 24)


class TestOrientEdges:
    def test_true_direction_recovered(self, panel):
        truth, p = panel
        # Build the true undirected network and orient it with the panel.
        adj = truth.adjacency()
        net = GeneNetwork(adj, adj.astype(float), truth.genes)
        oriented = orient_edges(net, p, min_z=3.0)
        assert oriented
        true_directed = {(truth.genes[int(r)], truth.genes[int(t)])
                         for r, t in truth.edges}
        correct = sum((e.regulator, e.target) in true_directed for e in oriented)
        assert correct / len(oriented) > 0.7

    def test_sorted_by_confidence(self, panel):
        truth, p = panel
        adj = truth.adjacency()
        net = GeneNetwork(adj, adj.astype(float), truth.genes)
        oriented = orient_edges(net, p)
        confs = [e.confidence for e in oriented]
        assert confs == sorted(confs, reverse=True)

    def test_no_evidence_edges_skipped(self, panel):
        truth, p = panel
        # An artificial edge between two never-perturbed genes is skipped.
        adj = np.zeros((25, 25), dtype=bool)
        adj[20, 21] = adj[21, 20] = True
        net = GeneNetwork(adj, adj.astype(float), truth.genes)
        assert orient_edges(net, p) == []

    def test_validation(self, panel):
        truth, p = panel
        adj = truth.adjacency()
        net = GeneNetwork(adj, adj.astype(float), truth.genes)
        with pytest.raises(ValueError):
            orient_edges(net, p, min_z=0.0)

    def test_confidence_nan_safe(self):
        e = DirectedEdge("a", "b", z_forward=5.0, z_reverse=float("nan"))
        assert e.confidence == 5.0


class TestFilterGenes:
    def test_constant_gene_dropped(self, rng):
        data = np.vstack([np.full(50, 3.0), rng.normal(size=(3, 50))])
        filtered, report = filter_genes(data, list("abcd"))
        assert report.dropped == {"a": "constant"}
        assert filtered.shape == (3, 50)
        assert report.kept_genes == ["b", "c", "d"]

    def test_low_coverage_dropped(self, rng):
        data = rng.normal(size=(3, 20))
        data[1, :15] = np.nan
        _, report = filter_genes(data, list("xyz"), min_finite_fraction=0.5)
        assert report.dropped == {"y": "low-coverage"}

    def test_variance_quantile(self, rng):
        scales = np.array([0.01, 0.1, 1.0, 10.0])
        data = rng.normal(size=(4, 200)) * scales[:, None]
        filtered, report = filter_genes(data, list("abcd"),
                                        variance_quantile=0.5)
        assert report.n_kept == 2
        assert set(report.kept_genes) == {"c", "d"}

    def test_clean_data_untouched(self, rng):
        data = rng.normal(size=(5, 30))
        filtered, report = filter_genes(data)
        assert report.n_dropped == 0
        assert np.array_equal(filtered, data)

    def test_pipeline_integration(self, rng):
        """Filtered data feeds straight into reconstruction."""
        from repro import TingeConfig, reconstruct_network

        data = np.vstack([rng.normal(size=(6, 80)), np.full((2, 80), 1.0)])
        genes = [f"g{i}" for i in range(8)]
        filtered, report = filter_genes(data, genes)
        assert report.n_kept == 6
        res = reconstruct_network(filtered, report.kept_genes,
                                  TingeConfig(n_permutations=5))
        assert res.network.n_genes == 6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            filter_genes(rng.normal(size=10))
        with pytest.raises(ValueError):
            filter_genes(rng.normal(size=(2, 5)), ["a"])
        with pytest.raises(ValueError):
            filter_genes(rng.normal(size=(2, 5)), min_finite_fraction=0.0)
        with pytest.raises(ValueError):
            filter_genes(rng.normal(size=(2, 5)), variance_quantile=1.0)
