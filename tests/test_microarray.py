"""Tests for repro.data.microarray."""

import numpy as np
import pytest

from repro.data.microarray import (
    apply_measurement_noise,
    impute_missing,
    log2_transform,
    quantile_normalize,
)


class TestMeasurementNoise:
    def test_intensities_positive(self, rng):
        x = rng.normal(size=(10, 50))
        noisy = apply_measurement_noise(x, dropout=0.0, seed=0)
        assert (noisy > 0).all()

    def test_dropout_fraction(self, rng):
        x = rng.normal(size=(50, 100))
        noisy = apply_measurement_noise(x, dropout=0.1, seed=1)
        frac = np.isnan(noisy).mean()
        assert 0.05 < frac < 0.15

    def test_signal_preserved_through_roundtrip(self, rng):
        # log2(noise(x)) should correlate strongly with x at small noise.
        x = rng.normal(size=(1, 500))
        noisy = apply_measurement_noise(x, scale_sd=0.05, background=0.0,
                                        dropout=0.0, seed=2)
        back = log2_transform(noisy)
        assert np.corrcoef(x[0], back[0])[0, 1] > 0.98

    def test_input_unmodified(self, rng):
        x = rng.normal(size=(3, 10))
        copy = x.copy()
        apply_measurement_noise(x, seed=0)
        assert np.array_equal(x, copy)

    def test_invalid_params(self, rng):
        x = rng.normal(size=(2, 5))
        with pytest.raises(ValueError):
            apply_measurement_noise(x, scale_sd=-1)
        with pytest.raises(ValueError):
            apply_measurement_noise(x, dropout=1.0)


class TestLog2Transform:
    def test_inverts_exp2(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(log2_transform(np.exp2(x)), x)

    def test_floors_non_positive(self):
        out = log2_transform(np.array([[0.0, -5.0]]), pseudocount=1e-3)
        assert np.allclose(out, np.log2(1e-3))

    def test_nan_passthrough(self):
        out = log2_transform(np.array([[np.nan, 4.0]]))
        assert np.isnan(out[0, 0]) and out[0, 1] == 2.0

    def test_invalid_pseudocount(self):
        with pytest.raises(ValueError):
            log2_transform(np.ones((1, 1)), pseudocount=0.0)


class TestQuantileNormalize:
    def test_identical_sorted_columns(self, rng):
        x = rng.normal(size=(100, 5)) * np.array([1, 2, 3, 4, 5])
        q = quantile_normalize(x)
        ref = np.sort(q[:, 0])
        for j in range(1, 5):
            assert np.allclose(np.sort(q[:, j]), ref)

    def test_preserves_within_column_order(self, rng):
        x = rng.normal(size=(50, 3))
        q = quantile_normalize(x)
        for j in range(3):
            assert np.array_equal(np.argsort(x[:, j]), np.argsort(q[:, j]))

    def test_rejects_nan(self):
        x = np.ones((3, 2))
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            quantile_normalize(x)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            quantile_normalize(np.ones(5))


class TestImputeMissing:
    def test_fills_with_gene_mean(self):
        x = np.array([[1.0, np.nan, 3.0]])
        out = impute_missing(x)
        assert out[0, 1] == pytest.approx(2.0)

    def test_median_strategy(self):
        x = np.array([[1.0, 1.0, 10.0, np.nan]])
        out = impute_missing(x, strategy="gene_median")
        assert out[0, 3] == pytest.approx(1.0)

    def test_all_missing_gene_zeroed(self):
        x = np.full((1, 4), np.nan)
        assert np.all(impute_missing(x) == 0.0)

    def test_complete_data_unchanged(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.array_equal(impute_missing(x), x)

    def test_input_not_modified(self):
        x = np.array([[1.0, np.nan]])
        impute_missing(x)
        assert np.isnan(x[0, 1])

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            impute_missing(np.ones((1, 2)), strategy="knn")
