"""Tests for repro.core.provenance."""

import numpy as np
import pytest

from repro import TingeConfig, reconstruct_network
from repro.core.provenance import (
    data_fingerprint,
    load_run_record,
    run_record,
    save_run_record,
    verify_run_record,
)


@pytest.fixture(scope="module")
def run():
    rng = np.random.default_rng(60)
    x = rng.normal(size=150)
    data = np.vstack([x, x + 0.2 * rng.normal(size=150), rng.normal(size=(3, 150))])
    result = reconstruct_network(data, config=TingeConfig(n_permutations=15, seed=4))
    return data, result


class TestDataFingerprint:
    def test_deterministic(self, rng):
        x = rng.normal(size=(4, 10))
        assert data_fingerprint(x) == data_fingerprint(x.copy())

    def test_sensitive_to_values_and_shape(self, rng):
        x = rng.normal(size=(4, 10))
        y = x.copy()
        y[0, 0] += 1e-9
        assert data_fingerprint(x) != data_fingerprint(y)
        assert data_fingerprint(x) != data_fingerprint(x.reshape(2, 20))


class TestRunRecord:
    def test_contents(self, run):
        data, result = run
        record = run_record(result, data)
        assert record["config"]["n_permutations"] == 15
        assert record["data"]["n_genes"] == 5
        assert record["result"]["n_edges"] == result.network.n_edges
        assert record["result"]["threshold"] == pytest.approx(result.network.threshold)
        assert set(record["result"]["timings"]) == set(result.timings)

    def test_json_roundtrip(self, run, tmp_path):
        data, result = run
        record = run_record(result, data)
        path = tmp_path / "run.json"
        save_run_record(record, path)
        back = load_run_record(path)
        assert back == record

    def test_version_guard(self, run, tmp_path):
        data, result = run
        record = run_record(result, data)
        record["record_version"] = 999
        path = tmp_path / "run.json"
        save_run_record(record, path)
        with pytest.raises(ValueError, match="version"):
            load_run_record(path)


class TestVerifyRunRecord:
    def test_clean_reproduction(self, run):
        data, result = run
        record = run_record(result, data)
        # Re-run with the identical config must verify cleanly.
        rerun = reconstruct_network(data, config=result.config)
        assert verify_run_record(record, data, rerun) == []

    def test_detects_changed_data(self, run, rng):
        data, result = run
        record = run_record(result, data)
        tampered = data.copy()
        tampered[0, 0] += 1.0
        problems = verify_run_record(record, tampered)
        assert any("fingerprint" in p for p in problems)

    def test_detects_wrong_shape(self, run, rng):
        data, result = run
        record = run_record(result, data)
        problems = verify_run_record(record, rng.normal(size=(3, 10)))
        assert any("shape" in p for p in problems)

    def test_detects_different_result(self, run):
        data, result = run
        record = run_record(result, data)
        other = reconstruct_network(
            data, config=TingeConfig(n_permutations=15, seed=4, alpha=0.3)
        )
        problems = verify_run_record(record, data, other)
        assert problems  # different alpha -> different threshold/edges

    def test_nan_threshold_roundtrip(self, run, tmp_path):
        data, _ = run
        res = reconstruct_network(
            data, config=TingeConfig(correction="bh", n_permutations=50, seed=0)
        )
        record = run_record(res, data)
        assert record["result"]["threshold"] is None
        assert verify_run_record(record, data, res) == []
