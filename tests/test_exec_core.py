"""Cross-product equivalence suite for the unified tile executor.

Every MI driver is now a ``(source, sink)`` configuration of
:func:`repro.core.exec.run_tile_plan`.  These tests pin the refactor's
central guarantee — bit-identical matrices across every
engine x schedule x source x sink combination — and assert that the
schedule plumbing changes *real dispatch order*, observable through the
tracer's counters and the engines' per-worker task counts.
"""

import threading

import numpy as np
import pytest

from repro.core.bspline import weight_tensor
from repro.core.checkpoint import mi_matrix_checkpointed
from repro.core.discretize import rank_transform
from repro.core.exec import (
    SCHEDULE_NAMES,
    DenseSink,
    MmapSource,
    TensorSource,
    plan_tiles,
    run_tile_plan,
    schedule_policy,
    weights_fingerprint,
)
from repro.core.mi_matrix import mi_matrix
from repro.core.outofcore import (
    build_weight_store,
    mi_matrix_outofcore,
    weight_store_fingerprint,
)
from repro.core.pipeline import TingeConfig, reconstruct_network
from repro.obs.tracer import Tracer
from repro.parallel.engine import ProcessEngine, ThreadEngine, make_engine
from repro.parallel.scheduler import (
    CyclicScheduler,
    DynamicScheduler,
    LptScheduler,
    StaticScheduler,
    block_partition,
    cyclic_partition,
    make_scheduler,
)

N_GENES = 14
TILE = 5  # 14 genes / tile 5 -> ragged edge tiles, so per-tile costs differ


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.normal(size=(N_GENES, 60))


@pytest.fixture(scope="module")
def weights(data):
    return weight_tensor(rank_transform(data), bins=8, order=3)


@pytest.fixture(scope="module")
def reference(weights):
    """Serial grid-order mi_matrix — the bit-identity baseline."""
    return mi_matrix(weights, tile=TILE).mi


# ---------------------------------------------------------------------------
# Plan construction and dispatch order
# ---------------------------------------------------------------------------


class TestTilePlanOrder:
    def plan(self, weights, schedule=None):
        return plan_tiles(TensorSource(weights), tile=TILE, schedule=schedule)

    def test_no_policy_is_grid_order(self, weights):
        plan = self.plan(weights)
        assert plan.order(4) == list(range(plan.n_tiles))

    def test_dynamic_chunk1_is_grid_order(self, weights):
        plan = self.plan(weights, "dynamic")
        assert plan.order(4) == list(range(plan.n_tiles))

    def test_static_concatenates_blocks(self, weights):
        plan = self.plan(weights, "static")
        expected = [int(i) for c in block_partition(plan.n_tiles, 2) for i in c]
        assert plan.order(2) == expected

    def test_cyclic_interleaves(self, weights):
        plan = self.plan(weights, "cyclic")
        expected = [int(i) for c in cyclic_partition(plan.n_tiles, 2) for i in c]
        assert plan.order(2) == expected
        assert expected[:2] == [0, 2]  # round-robin striping, not blocks

    def test_cost_orders_by_descending_tile_cost(self, weights):
        plan = self.plan(weights, "cost")
        costs = plan.costs()
        order = plan.order(1)
        ordered = costs[np.asarray(order)]
        assert (np.diff(ordered) <= 0).all()
        # The ragged grid makes grid order not cost-sorted, so LPT must
        # genuinely permute dispatch.
        assert order != list(range(plan.n_tiles))

    def test_single_worker_static_and_cyclic_are_identity(self, weights):
        # The bit-identity argument for serial runs: with one worker every
        # static policy degenerates to grid order.
        for schedule in ("static", "cyclic"):
            plan = self.plan(weights, schedule)
            assert plan.order(1) == list(range(plan.n_tiles))

    def test_every_order_is_a_permutation(self, weights):
        for schedule in SCHEDULE_NAMES:
            plan = self.plan(weights, schedule)
            for workers in (1, 2, 3):
                assert sorted(plan.order(workers)) == list(range(plan.n_tiles))


class TestSchedulePolicy:
    def test_names_resolve(self):
        assert isinstance(schedule_policy("static"), StaticScheduler)
        assert isinstance(schedule_policy("cyclic"), CyclicScheduler)
        assert isinstance(schedule_policy("cost"), LptScheduler)
        dyn = schedule_policy("dynamic")
        assert isinstance(dyn, DynamicScheduler) and dyn.chunk == 1

    def test_none_and_instance_passthrough(self):
        assert schedule_policy(None) is None
        policy = DynamicScheduler(chunk=3)
        assert schedule_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            schedule_policy("bogus")


# ---------------------------------------------------------------------------
# Cross-product equivalence: engine x schedule, bit-identical to serial
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("schedule", list(SCHEDULE_NAMES))
@pytest.mark.parametrize("engine_kind", [None, "serial", "thread", "process", "sharedmem"])
def test_engine_schedule_equivalence(engine_kind, schedule, weights, reference):
    engine = None if engine_kind is None else make_engine(engine_kind, n_workers=2)
    result = mi_matrix(weights, tile=TILE, engine=engine, schedule=schedule)
    assert np.array_equal(result.mi, reference)


def test_mmap_source_equivalence(tmp_path, data, weights, reference):
    """The out-of-core weight store feeds the same executor bit-identically."""
    store = build_weight_store(rank_transform(data), tmp_path / "w",
                               bins=8, order=3, dtype="float64")
    source = MmapSource(store)
    try:
        fingerprint = source.fingerprint()
        plan = plan_tiles(source, tile=TILE, schedule="cost")
        mi = run_tile_plan(plan, source, DenseSink(source.n_genes))
    finally:
        source.close()
    assert np.array_equal(mi, reference)
    assert fingerprint == weights_fingerprint(weights)


@pytest.mark.parametrize("schedule", ["dynamic", "cost"])
def test_outofcore_driver_equivalence(tmp_path, data, reference, schedule):
    store = build_weight_store(rank_transform(data), tmp_path / "w",
                               bins=8, order=3, dtype="float64")
    out = mi_matrix_outofcore(store, tmp_path / "mi", tile=TILE, schedule=schedule)
    assert np.array_equal(np.load(out), reference)


def test_checkpoint_driver_equivalence(tmp_path, weights, reference):
    mi = mi_matrix_checkpointed(weights, tmp_path / "ck", tile=TILE)
    assert np.array_equal(mi, reference)


# ---------------------------------------------------------------------------
# Checkpoint kill/resume through the executor
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    def test_kill_resume_identical(self, tmp_path, weights, reference):
        ck = tmp_path / "ck"
        runs = 0
        mi = None
        while mi is None:
            mi = mi_matrix_checkpointed(weights, ck, tile=TILE,
                                        interrupt_after_rows=1)
            runs += 1
            assert runs <= 10  # 3 block-rows: must converge quickly
        assert runs == 3  # one new row per run; the last run completes
        assert np.array_equal(mi, reference)

    def test_resume_under_different_engine_and_schedule(self, tmp_path, weights,
                                                        reference):
        ck = tmp_path / "ck"
        assert mi_matrix_checkpointed(weights, ck, tile=TILE,
                                      interrupt_after_rows=1) is None
        engine = ThreadEngine(n_workers=2, policy=make_scheduler("static"))
        mi = mi_matrix_checkpointed(weights, ck, tile=TILE, engine=engine,
                                    schedule="cyclic")
        assert np.array_equal(mi, reference)


# ---------------------------------------------------------------------------
# Schedules change real dispatch (observable, not just config state)
# ---------------------------------------------------------------------------


class TestDispatchOrder:
    def test_cost_schedule_reorders_serial_dispatch(self, weights):
        plan = plan_tiles(TensorSource(weights), tile=TILE, schedule="cost")
        grid = [float(t.n_pairs) for t in plan.tiles]
        expected = [float(plan.tiles[i].n_pairs) for i in plan.order(1)]
        assert expected != grid  # the plan genuinely permutes the grid

        tracer = Tracer()
        mi_matrix(weights, tile=TILE, tracer=tracer, schedule="cost")
        deltas = [e.delta for e in tracer.counter_events if e.name == "pairs_done"]
        assert deltas == expected

        tracer = Tracer()
        mi_matrix(weights, tile=TILE, tracer=tracer, schedule="dynamic")
        deltas = [e.delta for e in tracer.counter_events if e.name == "pairs_done"]
        assert deltas == grid

    def test_static_policy_fixes_per_worker_task_counts(self):
        # Force all three pool threads to run concurrently (each chunk's
        # first task blocks on a barrier) so the static block partition is
        # the only possible per-worker split.
        n_items, n_workers = 7, 3
        firsts = {int(c[0]) for c in block_partition(n_items, n_workers)}
        barrier = threading.Barrier(n_workers)

        def task(i):
            if i in firsts:
                barrier.wait(timeout=10)
            return i * i

        tracer = Tracer()
        engine = ThreadEngine(n_workers=n_workers, policy=StaticScheduler(),
                              tracer=tracer)
        results = engine.map(task, list(range(n_items)))
        assert results == [i * i for i in range(n_items)]

        expected = sorted(len(c) for c in block_partition(n_items, n_workers))
        assert sorted(engine.last_map_stats.task_counts().values()) == expected
        (span,) = tracer.find_spans("engine_map")
        assert span.metadata["policy"] == "static"
        assert sorted(span.metadata["worker_tasks"].values()) == expected

    def test_engine_map_span_annotates_policy(self):
        tracer = Tracer()
        engine = ProcessEngine(n_workers=2, policy=CyclicScheduler(), tracer=tracer)
        assert engine.map(_square, list(range(5))) == [0, 1, 4, 9, 16]
        (span,) = tracer.find_spans("engine_map")
        assert span.metadata["policy"] == "cyclic"

    def test_traced_mi_run_reports_worker_tasks(self, weights, reference):
        tracer = Tracer()
        engine = ThreadEngine(n_workers=2, policy=make_scheduler("static"),
                              tracer=tracer)
        result = mi_matrix(weights, tile=TILE, engine=engine, schedule="static")
        assert np.array_equal(result.mi, reference)
        spans = tracer.find_spans("engine_map")
        assert spans and all(s.metadata["policy"] == "static" for s in spans)
        n_tiles = plan_tiles(TensorSource(weights), tile=TILE).n_tiles
        assert sum(sum(s.metadata["worker_tasks"].values()) for s in spans) == n_tiles


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# Weight-store fingerprint header (out-of-core integrity)
# ---------------------------------------------------------------------------


class TestWeightStoreFingerprint:
    def build(self, tmp_path, data):
        return build_weight_store(rank_transform(data), tmp_path / "w",
                                  bins=8, order=3, dtype="float64")

    def test_sidecar_records_tensor_fingerprint(self, tmp_path, data, weights):
        store = self.build(tmp_path, data)
        assert weight_store_fingerprint(store) == weights_fingerprint(weights)

    def test_tampered_store_rejected(self, tmp_path, data):
        store = self.build(tmp_path, data)
        arr = np.load(store, mmap_mode="r+")
        arr[0, 0, 0] += 0.125
        arr.flush()
        del arr
        with pytest.raises(ValueError, match="fingerprint"):
            mi_matrix_outofcore(store, tmp_path / "mi", tile=TILE)

    def test_missing_sidecar_tolerated(self, tmp_path, data, reference):
        store = self.build(tmp_path, data)
        store.with_name(store.name + ".meta.json").unlink()
        assert weight_store_fingerprint(store) is None
        out = mi_matrix_outofcore(store, tmp_path / "mi", tile=TILE)
        assert np.array_equal(np.load(out), reference)


# ---------------------------------------------------------------------------
# Config / pipeline plumbing
# ---------------------------------------------------------------------------


class TestConfigPlumbing:
    def test_config_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            TingeConfig(schedule="bogus")

    def test_pipeline_schedule_equivalence(self, data):
        results = {}
        for schedule in ("dynamic", "cost", "static"):
            cfg = TingeConfig(bins=8, n_permutations=5, n_null_pairs=40,
                              tile=TILE, schedule=schedule)
            results[schedule] = reconstruct_network(data, config=cfg)
        base = results["dynamic"]
        for schedule in ("cost", "static"):
            assert np.array_equal(results[schedule].mi, base.mi)
            assert np.array_equal(results[schedule].network.adjacency,
                                  base.network.adjacency)

    def test_cli_schedule_flag(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["reconstruct", "x.tsv", "--out", str(tmp_path / "e.tsv"),
             "--schedule", "cost"]
        )
        assert args.schedule == "cost"
