"""Documentation consistency guards and doctest execution.

Keeps DESIGN.md's module map honest (every referenced module file exists),
keeps the README's install instructions aligned with the package layout,
and executes the doctests embedded in public docstrings.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDesignDocConsistency:
    @pytest.fixture(scope="class")
    def design_text(self):
        return (REPO / "DESIGN.md").read_text()

    def test_design_exists_with_mismatch_note(self, design_text):
        # The source-text caveat must stay at the top of DESIGN.md.
        assert "Source-text status" in design_text
        assert "CA-Krylov" in design_text  # the repro_why discrepancy note

    def test_every_referenced_module_exists(self, design_text):
        refs = set(re.findall(r"`(repro/[a-z_/]+\.py)`", design_text))
        assert refs, "DESIGN.md should reference module paths"
        missing = [r for r in refs if not (REPO / "src" / r).exists()]
        assert not missing, f"DESIGN.md references missing modules: {missing}"

    def test_every_bench_target_exists(self, design_text):
        refs = set(re.findall(r"`(benchmarks/bench_[a-z_]+\.py)`", design_text))
        assert len(refs) >= 14
        missing = [r for r in refs if not (REPO / r).exists()]
        assert not missing, f"DESIGN.md references missing benches: {missing}"

    def test_experiments_md_covers_all_ids(self, design_text):
        experiments = set(re.findall(r"\| (E\d+) ", design_text))
        assert len(experiments) >= 14
        exp_text = (REPO / "EXPERIMENTS.md").read_text()
        missing = [e for e in sorted(experiments) if f"## {e} " not in exp_text]
        assert not missing, f"EXPERIMENTS.md missing sections: {missing}"


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_mentions_paper(self, readme):
        assert "IPDPS" in readme and "10.1109/IPDPS.2014.35" in readme

    def test_quickstart_imports_resolve(self, readme):
        # Every `from repro... import ...` line in the README must work.
        for line in re.findall(r"^from (repro[.\w]*) import ([\w, ]+)$",
                               readme, re.MULTILINE):
            module, names = line
            mod = __import__(module, fromlist=["_"])
            for name in names.split(","):
                assert hasattr(mod, name.strip()), f"{module}.{name.strip()}"

    def test_architecture_modules_exist(self, readme):
        # Module names listed in the architecture tree must exist.
        for sub in ("core", "parallel", "machine", "data", "baselines",
                    "analysis", "bench", "cluster"):
            assert (REPO / "src" / "repro" / sub / "__init__.py").exists()


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.core.pipeline",
        "repro.parallel.sharedmem",
        "repro",
    ])
    def test_module_doctests_pass(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, _tests = doctest.testmod(module, verbose=False)
        assert failures == 0
