"""Tests for repro.machine.spec: machine models and the SMT issue curve."""

import numpy as np
import pytest

from repro.machine.spec import (
    BLUEGENE_L_1024,
    XEON_E5_2670_DUAL,
    XEON_PHI_5110P,
    ClusterSpec,
    MachineSpec,
    get_machine,
)


class TestPresets:
    def test_phi_shape(self):
        phi = XEON_PHI_5110P
        assert phi.cores == 60
        assert phi.threads_per_core == 4
        assert phi.max_threads == 240
        assert phi.vector_lanes_sp == 16

    def test_phi_peak_flops(self):
        # 60 cores * 16 lanes * 2 (FMA) * 1.053 GHz ~ 2.02 TF SP.
        assert XEON_PHI_5110P.peak_gflops_sp == pytest.approx(2021.8, rel=1e-3)

    def test_xeon_peak_flops(self):
        # 16 * 8 * 2 * 2.6 = 665.6 GF SP.
        assert XEON_E5_2670_DUAL.peak_gflops_sp == pytest.approx(665.6, rel=1e-3)

    def test_get_machine(self):
        assert get_machine("xeon_phi") is XEON_PHI_5110P
        assert get_machine("xeon") is XEON_E5_2670_DUAL
        assert get_machine("bluegene_l") is BLUEGENE_L_1024

    def test_get_machine_unknown(self):
        with pytest.raises(ValueError):
            get_machine("gpu")


class TestSmtIssueModel:
    def test_knc_one_thread_half_rate(self):
        phi = XEON_PHI_5110P
        assert phi.core_rate_gflops(1) == pytest.approx(0.5 * phi.core_rate_gflops(2))

    def test_knc_saturates_at_two(self):
        phi = XEON_PHI_5110P
        assert phi.core_rate_gflops(2) == phi.core_rate_gflops(4)

    def test_xeon_ht_modest_gain(self):
        x = XEON_E5_2670_DUAL
        gain = x.core_rate_gflops(2) / x.core_rate_gflops(1)
        assert 1.0 < gain < 1.3

    def test_thread_rate_splits_core(self):
        phi = XEON_PHI_5110P
        assert phi.thread_rate_gflops(4) == pytest.approx(phi.core_rate_gflops(4) / 4)

    def test_occupancy_bounds(self):
        with pytest.raises(ValueError):
            XEON_PHI_5110P.core_rate_gflops(0)
        with pytest.raises(ValueError):
            XEON_PHI_5110P.core_rate_gflops(5)


class TestEffectiveGflops:
    def test_monotone_in_threads(self):
        phi = XEON_PHI_5110P
        rates = [phi.effective_gflops(t) for t in (1, 30, 60, 120, 180, 240)]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))

    def test_phi_120_double_of_60(self):
        # The signature KNC behaviour: 2 threads/core doubles 1 thread/core.
        phi = XEON_PHI_5110P
        assert phi.effective_gflops(120) == pytest.approx(2 * phi.effective_gflops(60))

    def test_phi_240_equals_120(self):
        phi = XEON_PHI_5110P
        assert phi.effective_gflops(240) == pytest.approx(phi.effective_gflops(120))

    def test_breadth_first_placement(self):
        phi = XEON_PHI_5110P
        counts = phi.threads_on_core_count(61)
        assert sorted(counts, reverse=True)[:1] == [2]
        assert sum(counts) == 61
        assert len(counts) == 60

    def test_placement_under_subscription(self):
        assert XEON_PHI_5110P.threads_on_core_count(10) == [1] * 10

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            XEON_PHI_5110P.effective_gflops(0)
        with pytest.raises(ValueError):
            XEON_PHI_5110P.effective_gflops(241)


class TestValidation:
    def test_smt_tuple_length_checked(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 4, 2, 1.0, 8, smt_efficiency=(1.0,))

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 4, 1, 1.0, 8, kernel_efficiency=0.0)
        with pytest.raises(ValueError):
            MachineSpec("bad", 4, 1, 1.0, 8, kernel_efficiency=1.5)

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec("c", 0, XEON_E5_2670_DUAL)

    def test_cluster_totals(self):
        assert BLUEGENE_L_1024.total_cores == 1024
        assert BLUEGENE_L_1024.effective_gflops() > 0
