"""Cross-engine equivalence: every engine yields bit-identical results.

Tiles are pure functions of the weight tensor, so serial, thread, process
(pickle-return) and shared-memory (write-in-place) execution must produce
*exactly* the same MI matrix — not merely close.  The same holds for the
checkpointed and out-of-core drivers, which reuse the engines per
block-row.
"""

import numpy as np
import pytest

from repro.core.checkpoint import mi_matrix_checkpointed
from repro.core.mi_matrix import mi_matrix
from repro.core.outofcore import build_weight_store, mi_matrix_outofcore
from repro.parallel.engine import (
    ProcessEngine,
    SerialEngine,
    SharedMemoryEngine,
    ThreadEngine,
)


def engines():
    return [
        ("serial", SerialEngine()),
        ("thread", ThreadEngine(n_workers=3)),
        ("process", ProcessEngine(n_workers=3)),
        ("sharedmem", SharedMemoryEngine(n_workers=3)),
    ]


@pytest.fixture(scope="module")
def reference(small_weights):
    return mi_matrix(small_weights, tile=8).mi


class TestMiMatrixEquivalence:
    @pytest.mark.parametrize("kind,engine", engines(), ids=[k for k, _ in engines()])
    def test_bit_identical_to_serial(self, kind, engine, small_weights, reference):
        out = mi_matrix(small_weights, tile=8, engine=engine).mi
        assert np.array_equal(out, reference), f"{kind} diverged from serial"

    def test_sharedmem_preallocated_out(self, small_weights, reference):
        out = np.zeros_like(reference)
        result = mi_matrix(small_weights, tile=8,
                           engine=SharedMemoryEngine(n_workers=3), out=out)
        assert result.mi is out
        assert np.array_equal(out, reference)

    def test_out_shape_validated(self, small_weights):
        with pytest.raises(ValueError, match="out"):
            mi_matrix(small_weights, tile=8, out=np.zeros((3, 3)))


class TestSparseKernelEquivalence:
    """The sparse kernel is pure per pair, so every engine must reproduce
    the serial sparse matrix bit for bit — including elastic, which ships
    the packed slabs (:class:`repro.core.exec.PackedWeightSource`) instead
    of the dense tensor."""

    @pytest.fixture(scope="class")
    def sparse_reference(self, small_weights):
        return mi_matrix(small_weights, tile=8, kernel="sparse").mi

    @pytest.mark.parametrize("kind,engine", engines(), ids=[k for k, _ in engines()])
    def test_bit_identical_to_serial(self, kind, engine, small_weights,
                                     sparse_reference):
        out = mi_matrix(small_weights, tile=8, kernel="sparse",
                        engine=engine).mi
        assert np.array_equal(out, sparse_reference), f"{kind} diverged"

    def test_bit_identical_elastic(self, small_weights, sparse_reference):
        import threading

        from repro.cluster.elastic import ElasticEngine, worker_main

        eng = ElasticEngine(n_workers=2, spawn=False, heartbeat=0.5)
        threads = [
            threading.Thread(
                target=worker_main,
                args=(eng.coordinator.host, eng.coordinator.port),
                kwargs={"name": f"t{i}"}, daemon=True)
            for i in range(2)
        ]
        for t in threads:
            t.start()
        try:
            eng.coordinator.wait_for_workers(2, timeout=10)
            out = mi_matrix(small_weights, tile=8, kernel="sparse",
                            engine=eng).mi
            assert np.array_equal(out, sparse_reference)
        finally:
            eng.close()
            for t in threads:
                t.join(timeout=5)

    def test_close_to_dense_reference(self, sparse_reference, reference):
        # The documented sparse-vs-GEMM summation-order bound (~1 ulp).
        np.testing.assert_allclose(sparse_reference, reference,
                                   rtol=0, atol=1e-13)

    def test_float32_identical_across_engines(self, small_weights):
        ref = mi_matrix(small_weights, tile=8, kernel="sparse",
                        kernel_dtype="float32").mi
        for kind, engine in engines()[1:]:
            out = mi_matrix(small_weights, tile=8, kernel="sparse",
                            kernel_dtype="float32", engine=engine).mi
            assert np.array_equal(out, ref), f"{kind} diverged (float32)"


class TestCheckpointedEquivalence:
    @pytest.mark.parametrize("kind,engine", engines(), ids=[k for k, _ in engines()])
    def test_bit_identical(self, kind, engine, small_weights, reference, tmp_path):
        out = mi_matrix_checkpointed(small_weights, tmp_path / kind, tile=8,
                                     engine=engine)
        assert np.array_equal(out, reference), f"{kind} diverged from serial"

    def test_resume_with_engine(self, small_weights, reference, tmp_path):
        ck = tmp_path / "resume"
        assert mi_matrix_checkpointed(small_weights, ck, tile=8,
                                      interrupt_after_rows=1) is None
        out = mi_matrix_checkpointed(small_weights, ck, tile=8,
                                     engine=SharedMemoryEngine(n_workers=2))
        assert np.array_equal(out, reference)


class TestOutOfCoreEquivalence:
    @pytest.fixture(scope="class")
    def store(self, small_dataset, tmp_path_factory):
        from repro.core.discretize import rank_transform

        path = tmp_path_factory.mktemp("ooc") / "weights"
        return build_weight_store(rank_transform(small_dataset.expression), path,
                                  bins=10, order=3, dtype="float64")

    @pytest.fixture(scope="class")
    def ooc_reference(self, store, tmp_path_factory):
        out = mi_matrix_outofcore(store, tmp_path_factory.mktemp("ref") / "mi", tile=8)
        return np.load(out)

    @pytest.mark.parametrize("kind,engine", engines(), ids=[k for k, _ in engines()])
    def test_bit_identical(self, kind, engine, store, ooc_reference, tmp_path):
        out = mi_matrix_outofcore(store, tmp_path / "mi", tile=8, engine=engine)
        assert np.array_equal(np.load(out), ooc_reference), f"{kind} diverged"


class TestIncrementalDeltaEquivalence:
    """The sample-increment dirty-tile replay is engine-independent: the
    delta path (null rebuild + selective tile replay) must yield the same
    network as a serial update — bitwise — on every engine, elastic
    included."""

    @pytest.fixture(scope="class")
    def streaming(self):
        from repro.core.incremental import NetworkUpdater
        from repro.core.pipeline import TingeConfig, reconstruct_network

        rng = np.random.default_rng(42)
        n, m, dm = 30, 100, 2
        full = rng.normal(size=(n, m + dm))
        for k in range(n // 6):
            full[2 * k + 1] = full[2 * k] + 0.3 * rng.normal(size=m + dm)
        data, new = full[:, :m], full[:, m:]
        cfg = TingeConfig(n_permutations=8, n_null_pairs=50, alpha=0.05,
                          seed=3, tile=8)
        res_old = reconstruct_network(data, config=cfg)

        def updater():
            return NetworkUpdater.from_result(res_old, data)

        serial = updater()
        ref_delta = serial.add_samples(new)
        assert ref_delta is not None
        return updater, new, serial.network, ref_delta

    @pytest.mark.parametrize("kind,engine", engines(),
                             ids=[k for k, _ in engines()])
    def test_delta_bit_identical(self, kind, engine, streaming):
        updater, new, ref_net, ref_delta = streaming
        u = updater()
        delta = u.add_samples(new, engine=engine)
        net = u.network
        assert net.threshold == ref_net.threshold, f"{kind} threshold diverged"
        assert np.array_equal(net.adjacency, ref_net.adjacency), f"{kind} diverged"
        assert np.array_equal(net.weights, ref_net.weights), f"{kind} diverged"
        # Same screen, same replay set, whatever runs the tiles.
        assert delta.pairs_recomputed == ref_delta.pairs_recomputed
        assert delta.tiles_dirty == ref_delta.tiles_dirty

    def test_delta_bit_identical_elastic(self, streaming):
        import threading

        from repro.cluster.elastic import ElasticEngine, worker_main

        updater, new, ref_net, ref_delta = streaming
        eng = ElasticEngine(n_workers=2, spawn=False, heartbeat=0.5)
        threads = [
            threading.Thread(
                target=worker_main,
                args=(eng.coordinator.host, eng.coordinator.port),
                kwargs={"name": f"t{i}"}, daemon=True)
            for i in range(2)
        ]
        for t in threads:
            t.start()
        try:
            eng.coordinator.wait_for_workers(2, timeout=10)
            u = updater()
            delta = u.add_samples(new, engine=eng)
            net = u.network
            assert net.threshold == ref_net.threshold
            assert np.array_equal(net.adjacency, ref_net.adjacency)
            assert np.array_equal(net.weights, ref_net.weights)
            assert delta.pairs_recomputed == ref_delta.pairs_recomputed
        finally:
            eng.close()
            for t in threads:
                t.join(timeout=5)
